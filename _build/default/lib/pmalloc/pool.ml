(** A persistent object pool: the libpmemobj analogue.

    A pool owns a whole {!Pmem.Device}; all offsets are device addresses.
    The pool exposes raw typed accessors plus the persist primitives
    applications use. Crash consistency of pool metadata is delegated to
    {!Redo} (allocator) and {!Tx} (user transactions); {!Recovery} composes
    their recovery steps at open time. *)

type t = {
  dev : Pmem.Device.t;
  layout : Layout.t;
  version : Version.t;
}

exception Corrupted of string

let device t = t.dev
let layout t = t.layout
let version t = t.version
let size t = t.layout.Layout.pool_size

(** {1 Raw access} *)

let read_i64 t ~off = Pmem.Device.load_i64 t.dev ~addr:off
let write_i64 t ~off v = Pmem.Device.store_i64 t.dev ~addr:off v
let read_bytes t ~off ~len = Pmem.Device.load t.dev ~addr:off ~size:len
let write_bytes t ~off b = Pmem.Device.store t.dev ~addr:off b
let write_bytes_nt t ~off b = Pmem.Device.store_nt t.dev ~addr:off b
let read_u8 t ~off = Char.code (Bytes.get (read_bytes t ~off ~len:1) 0)
let write_u8 t ~off v = write_bytes t ~off (Bytes.make 1 (Char.chr (v land 0xff)))

(** {1 Persistency primitives} *)

let flush t ~off ~size = Pmem.Device.flush_range t.dev ~kind:Pmem.Op.Clwb ~addr:off ~size
let flush_invalidating t ~off ~size =
  Pmem.Device.flush_range t.dev ~kind:Pmem.Op.Clflushopt ~addr:off ~size
let drain t = Pmem.Device.sfence t.dev

(** [persist t ~off ~size] = flush + drain: the everyday "make this range
    durable" helper, like libpmemobj's [pmemobj_persist]. *)
let persist t ~off ~size =
  flush t ~off ~size;
  (* Seeded performance bug: flush the same lines a second time. *)
  if Bugs.persist_double_flush_enabled () then flush t ~off ~size;
  drain t

let persist_i64 t ~off v =
  write_i64 t ~off v;
  persist t ~off ~size:8

let cas t ~off ~expected ~desired = Pmem.Device.cas t.dev ~addr:off ~expected ~desired
let fetch_add t ~off delta = Pmem.Device.fetch_add t.dev ~addr:off delta

(** An address guaranteed to lie outside the pool: flushing it reproduces the
    "flush acts on a volatile address" performance bug. *)
let volatile_scratch_addr t = size t + 4096

(** {1 Header} *)

exception Not_initialised
(** The device holds no committed pool: either it is blank or a crash hit
    pool creation before the commit marker (the header checksum) was
    written. The caller re-creates the pool. *)

let header_checksum t =
  Checksum.of_i64s
    [
      read_i64 t ~off:Layout.magic_off;
      read_i64 t ~off:Layout.version_off;
      read_i64 t ~off:Layout.size_off;
      read_i64 t ~off:Layout.root_off_off;
      read_i64 t ~off:Layout.root_size_off;
      read_i64 t ~off:Layout.generation_off;
    ]

(* Pool creation writes everything first and commits with a single atomic
   store of the header checksum: a crash anywhere before that store leaves
   checksum = 0 and the pool reads as never created. *)
let create ?(version = Version.V1_12) dev =
  let layout = Layout.compute ~pool_size:(Pmem.Device.size dev) in
  let t = { dev; layout; version } in
  write_i64 t ~off:Layout.magic_off Layout.magic;
  write_i64 t ~off:Layout.version_off (Version.to_int64 version);
  write_i64 t ~off:Layout.size_off (Int64.of_int layout.Layout.pool_size);
  write_i64 t ~off:Layout.root_off_off 0L;
  write_i64 t ~off:Layout.root_size_off 0L;
  write_i64 t ~off:Layout.generation_off 1L;
  persist t ~off:0 ~size:Layout.header_size;
  (* Logs start empty. *)
  write_i64 t ~off:(layout.Layout.redo_off + Layout.redo_count_off) 0L;
  write_i64 t ~off:(layout.Layout.redo_off + Layout.redo_committed_off) 0L;
  persist t ~off:layout.Layout.redo_off ~size:Layout.redo_header_size;
  write_i64 t ~off:(layout.Layout.ulog_off + Layout.ulog_state_off) 0L;
  write_i64 t ~off:(layout.Layout.ulog_off + Layout.ulog_count_off) 0L;
  write_i64 t ~off:(layout.Layout.ulog_off + Layout.ulog_overflow_off) 0L;
  persist t ~off:layout.Layout.ulog_off ~size:Layout.ulog_header_size;
  (* Bitmap: all chunks free. *)
  write_bytes t ~off:layout.Layout.bitmap_off (Bytes.make layout.Layout.chunk_count '\000');
  persist t ~off:layout.Layout.bitmap_off ~size:layout.Layout.chunk_count;
  (* commit point *)
  persist_i64 t ~off:Layout.header_checksum_off (header_checksum t);
  t

(** Validate the header. Raises {!Not_initialised} when the pool was never
    committed and {!Corrupted} when the header fails its checksum. Called
    by recovery {e after} redo-log repair, since an interrupted header
    update is completed by the redo log. *)
let validate_header t =
  let stored = read_i64 t ~off:Layout.header_checksum_off in
  if Int64.equal stored 0L then raise Not_initialised;
  if not (Int64.equal stored (header_checksum t)) then
    raise (Corrupted "header checksum mismatch");
  if not (Int64.equal (read_i64 t ~off:Layout.magic_off) Layout.magic) then
    raise (Corrupted "bad magic: not a pool or header lost")

(** Attach without validation (recovery repairs first, then validates). *)
let attach_unchecked dev =
  let layout = Layout.compute ~pool_size:(Pmem.Device.size dev) in
  let probe = { dev; layout; version = Version.V1_12 } in
  let version =
    match Version.of_int64 (read_i64 probe ~off:Layout.version_off) with
    | Some v -> v
    | None -> Version.V1_12
  in
  { probe with version }

(** Attach to an existing pool without running recovery (recovery is
    {!Recovery.open_pool}'s job). Validates the header. *)
let attach dev =
  let t = attach_unchecked dev in
  validate_header t;
  if Version.of_int64 (read_i64 t ~off:Layout.version_off) = None then
    raise (Corrupted "unknown pool version");
  t

(** {1 Root object} *)

(* Header updates after creation go through the redo log so they are
   failure-atomic together with their checksum refresh. *)
let set_root t ~off ~size:root_size =
  let b = Lowlog.builder () in
  Lowlog.stage b ~addr:Layout.root_off_off ~value:(Int64.of_int off);
  Lowlog.stage b ~addr:Layout.root_size_off ~value:(Int64.of_int root_size);
  let checksum =
    Checksum.of_i64s
      [
        read_i64 t ~off:Layout.magic_off;
        read_i64 t ~off:Layout.version_off;
        read_i64 t ~off:Layout.size_off;
        Int64.of_int off;
        Int64.of_int root_size;
        read_i64 t ~off:Layout.generation_off;
      ]
  in
  Lowlog.stage b ~addr:Layout.header_checksum_off ~value:checksum;
  Lowlog.commit t.dev t.layout b

let root t =
  let off = Int64.to_int (read_i64 t ~off:Layout.root_off_off) in
  let root_size = Int64.to_int (read_i64 t ~off:Layout.root_size_off) in
  if off = 0 then None else Some (off, root_size)
