(** On-media layout of a pool.

    {v
    +---------------------+ 0
    | header (1 line)     |   magic, version, size, root, checksum
    +---------------------+ header_size
    | redo log            |   metadata redo (allocator operations)
    +---------------------+ redo_off + redo_bytes
    | undo log (tx lane)  |   transaction undo log, fixed capacity
    +---------------------+ bitmap_off
    | allocation bitmap   |   1 byte per heap chunk
    +---------------------+ heap_off
    | heap chunks         |   64-byte chunks handed out by the allocator
    +---------------------+ pool size
    v} *)

let header_size = 64

(* Header field offsets. *)
let magic_off = 0
let version_off = 8
let size_off = 16
let root_off_off = 24
let root_size_off = 32
let generation_off = 40
let header_checksum_off = 48

let magic = 0x4f43_414d_4c50_4d31L (* "OCAMLPM1" as an integer tag *)

(* Redo log: header line + fixed entry slots of 16 bytes (addr, value). *)
let redo_cap = 520
let redo_header_size = 64
let redo_count_off = 0
let redo_committed_off = 8
let redo_checksum_off = 16
let redo_entry_size = 16
let redo_bytes = redo_header_size + (redo_cap * redo_entry_size)

(* Undo log: header line + fixed 64-byte entry slots; each entry snapshots
   up to 48 bytes. Larger ranges are split across entries. An overflow
   extension (allocated from the heap) chains behind the fixed area. *)
let ulog_cap = 128
let ulog_header_size = 64
let ulog_state_off = 0
let ulog_count_off = 8
let ulog_overflow_off = 16 (* heap address of the extension block, 0 = none *)
let ulog_overflow_cap_off = 24
let ulog_entry_size = 64
let ulog_entry_data_max = 48
let ulog_bytes = ulog_header_size + (ulog_cap * ulog_entry_size)

let chunk_size = 64

type t = {
  pool_size : int;
  redo_off : int;
  ulog_off : int;
  bitmap_off : int;
  heap_off : int;
  chunk_count : int;
}

let align = Pmem.Addr.align_up

let compute ~pool_size =
  let redo_off = header_size in
  let ulog_off = align (redo_off + redo_bytes) 64 in
  let bitmap_off = align (ulog_off + ulog_bytes) 64 in
  let remaining = pool_size - bitmap_off in
  if remaining < 2 * chunk_size then
    invalid_arg
      (Printf.sprintf "Pmalloc.Layout: pool of %d bytes is too small (minimum ~%d)"
         pool_size
         (bitmap_off + (2 * chunk_size)));
  (* Each chunk costs chunk_size bytes of heap plus 1 bitmap byte. *)
  let chunk_count = remaining / (chunk_size + 1) in
  let heap_off = align (bitmap_off + chunk_count) 64 in
  let chunk_count = min chunk_count ((pool_size - heap_off) / chunk_size) in
  { pool_size; redo_off; ulog_off; bitmap_off; heap_off; chunk_count }

let chunk_addr t i = t.heap_off + (i * chunk_size)
let chunk_of_addr t addr = (addr - t.heap_off) / chunk_size
let redo_entry_off t i = t.redo_off + redo_header_size + (i * redo_entry_size)
let ulog_entry_off t i = t.ulog_off + ulog_header_size + (i * ulog_entry_size)
