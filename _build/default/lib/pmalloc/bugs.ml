(** Seeded bugs that live inside the pmalloc library itself (as opposed to
    the applications built on top of it). See {!Bugreg} for the mechanism.

    [pmdk112_tx_overflow_commit] reproduces the high-priority PMDK 1.12 bug
    found by Mumak (paper section 6.4, pmem/pmdk issue 5461): committing a
    transaction large enough to have allocated dynamic undo-log space leaves
    a window in which a crash strands a stale extension pointer that makes a
    subsequent large transaction crash the application. *)

let tx_overflow_commit =
  Bugreg.register ~id:"pmdk112_tx_overflow_commit" ~component:"pmalloc"
    ~taxonomy:Bugreg.Atomicity
    ~description:
      "V1.12: commit of a large tx clears the undo-log extension pointer after \
       (instead of before) marking the lane clean; a crash in between strands a \
       stale pointer and the next large tx aborts"
    ~detectors:[ "mumak"; "witcher"; "agamotto" ]

let redo_apply_missing_drain =
  Bugreg.register ~id:"pmalloc_redo_missing_drain" ~component:"pmalloc"
    ~taxonomy:Bugreg.Durability
    ~description:
      "redo-log apply never flushes the home locations: the allocator bitmap \
       updates are left to cache eviction"
    ~detectors:[ "mumak"; "pmdebugger"; "xfdetector"; "agamotto"; "witcher" ]

let persist_double_flush =
  Bugreg.register ~id:"pmalloc_persist_double_flush" ~component:"pmalloc"
    ~taxonomy:Bugreg.Redundant_flush
    ~description:"persist flushes every touched line twice"
    ~detectors:[ "mumak"; "pmdebugger"; "agamotto"; "witcher" ]

let tx_overflow_commit_enabled () = Bugreg.enabled tx_overflow_commit.Bugreg.id
let redo_apply_missing_drain_enabled () = Bugreg.enabled redo_apply_missing_drain.Bugreg.id
let persist_double_flush_enabled () = Bugreg.enabled persist_double_flush.Bugreg.id

let all = [ tx_overflow_commit; redo_apply_missing_drain; persist_double_flush ]
let active_ids () = List.filter_map (fun b -> if Bugreg.enabled b.Bugreg.id then Some b.Bugreg.id else None) all
