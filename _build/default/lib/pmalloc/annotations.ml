(** pmemcheck-style annotations built into the library.

    PMDK ships extensively annotated for pmemcheck; tools like PMDebugger
    ride on those annotations (paper section 3). The analogue here: the
    transaction machinery announces begin/end to whoever registered, which
    is what lets annotation-based tools segment their bookkeeping per
    transaction — and is also why they cannot analyse applications built on
    other libraries. *)

let tx_begin_hook : (unit -> unit) ref = ref (fun () -> ())
let tx_end_hook : (unit -> unit) ref = ref (fun () -> ())

let with_hooks ~on_tx_begin ~on_tx_end f =
  let saved_b = !tx_begin_hook and saved_e = !tx_end_hook in
  tx_begin_hook := on_tx_begin;
  tx_end_hook := on_tx_end;
  Fun.protect
    ~finally:(fun () ->
      tx_begin_hook := saved_b;
      tx_end_hook := saved_e)
    f
