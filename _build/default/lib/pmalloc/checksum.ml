(** FNV-1a 64-bit checksums, used to validate persistent metadata (pool
    header, log entries) during recovery. *)

let offset_basis = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let fnv64 ?(init = offset_basis) b ~off ~len =
  let h = ref init in
  for i = off to off + len - 1 do
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code (Bytes.get b i)))) prime
  done;
  !h

let of_bytes b = fnv64 b ~off:0 ~len:(Bytes.length b)

let of_i64s values =
  let b = Bytes.create (8 * List.length values) in
  List.iteri (fun i v -> Bytes.set_int64_le b (i * 8) v) values;
  of_bytes b
