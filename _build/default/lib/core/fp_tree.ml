(** The failure-point tree (paper section 4.1 and Figure 2).

    Each root-to-leaf path is a unique call stack leading to a failure
    point; a leaf additionally carries the per-frame instruction index that
    distinguishes, say, line 2 from line 3 of the same function. One fault
    is injected per leaf. The tree both deduplicates code paths and makes
    the membership test during the injection phase cheap (the search-heavy
    operation, as the paper notes).

    The tree serialises to a plain text format — the analogue of the file
    Mumak passes between the tree-construction and injection executions. *)

type point = {
  capture : Pmtrace.Callstack.capture;
  mutable visited : bool;
  ordinal : int; (* discovery order, stable across runs *)
}

type node = {
  mutable children : (string * node) list;
  mutable points : (int * point) list; (* keyed by op_index *)
}

type t = { root : node; mutable size : int }

let create_node () = { children = []; points = [] }
let create () = { root = create_node (); size = 0 }
let size t = t.size

let rec find_node node = function
  | [] -> Some node
  | label :: rest ->
      Option.bind (List.assoc_opt label node.children) (fun child -> find_node child rest)

let rec ensure_node node = function
  | [] -> node
  | label :: rest ->
      let child =
        match List.assoc_opt label node.children with
        | Some c -> c
        | None ->
            let c = create_node () in
            node.children <- (label, c) :: node.children;
            c
      in
      ensure_node child rest

(** [insert t capture] adds a failure point if its path is new. Returns
    [`Added p] for a fresh point and [`Existing p] otherwise. *)
let insert t capture =
  let node = ensure_node t.root capture.Pmtrace.Callstack.path in
  match List.assoc_opt capture.Pmtrace.Callstack.op_index node.points with
  | Some p -> `Existing p
  | None ->
      let p = { capture; visited = false; ordinal = t.size } in
      node.points <- (capture.Pmtrace.Callstack.op_index, p) :: node.points;
      t.size <- t.size + 1;
      `Added p

(** [find t capture] looks a failure point up without modifying the tree —
    the hot operation of the injection phase. *)
let find t capture =
  Option.bind
    (find_node t.root capture.Pmtrace.Callstack.path)
    (fun node -> List.assoc_opt capture.Pmtrace.Callstack.op_index node.points)

let iter t f =
  let rec go node =
    List.iter (fun (_, p) -> f p) node.points;
    List.iter (fun (_, child) -> go child) node.children
  in
  go t.root

let unvisited_count t =
  let n = ref 0 in
  iter t (fun p -> if not p.visited then incr n);
  !n

let points t =
  let acc = ref [] in
  iter t (fun p -> acc := p :: !acc);
  List.sort (fun a b -> compare a.ordinal b.ordinal) !acc

(** {1 Serialization} — one line per failure point. *)

let serialize t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun p ->
      Buffer.add_string buf (string_of_int p.capture.Pmtrace.Callstack.op_index);
      Buffer.add_char buf '|';
      Buffer.add_string buf (String.concat ">" p.capture.Pmtrace.Callstack.path);
      Buffer.add_char buf '\n')
    (points t);
  Buffer.contents buf

let deserialize s =
  let t = create () in
  String.split_on_char '\n' s
  |> List.iter (fun line ->
         if String.length line > 0 then
           match String.index_opt line '|' with
           | None -> invalid_arg "Fp_tree.deserialize: missing separator"
           | Some i ->
               let op_index = int_of_string (String.sub line 0 i) in
               let path =
                 String.sub line (i + 1) (String.length line - i - 1)
                 |> String.split_on_char '>'
                 |> List.filter (fun s -> s <> "")
               in
               ignore (insert t { Pmtrace.Callstack.path; op_index }));
  t
