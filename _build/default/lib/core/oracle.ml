(** Recovery-as-oracle (paper section 4.1): classify what happened when the
    application's own recovery procedure ran against a crash image. *)

type outcome =
  | Consistent  (** recovery succeeded: the state is valid (or was repaired) *)
  | Unrecoverable of string
      (** recovery completed but deemed the state beyond repair *)
  | Crashed of string
      (** recovery itself died (the segfault-in-recovery analogue); carries
          the exception text *)

let classify recover dev =
  match recover dev with
  | Ok () -> Consistent
  | Error msg -> Unrecoverable msg
  | exception e -> Crashed (Printexc.to_string e)

let is_bug = function Consistent -> false | Unrecoverable _ | Crashed _ -> true

let to_string = function
  | Consistent -> "consistent"
  | Unrecoverable m -> "unrecoverable: " ^ m
  | Crashed m -> "recovery crashed: " ^ m
