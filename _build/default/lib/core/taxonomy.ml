(** The PM bug taxonomy of paper section 2, and the tool-capability matrix
    of Table 1. *)

type bug_class =
  | Durability
  | Atomicity
  | Ordering
  | Redundant_flush
  | Redundant_fence
  | Transient_data

let all_classes =
  [ Durability; Atomicity; Ordering; Redundant_flush; Redundant_fence; Transient_data ]

let class_to_string = function
  | Durability -> "Durability"
  | Atomicity -> "Atomicity"
  | Ordering -> "Ordering"
  | Redundant_flush -> "Redundant Flush"
  | Redundant_fence -> "Redundant Fence"
  | Transient_data -> "Transient Data"

let is_correctness = function
  | Durability | Atomicity | Ordering -> true
  | Redundant_flush | Redundant_fence | Transient_data -> false

(** How a tool supports a capability: natively, only with manual
    annotations, or conflated with another class (pmemcheck and
    PMDebugger report transient data as durability bugs). *)
type support = No | Yes | With_annotations | Conflated

type tool_profile = {
  tool : string;
  coverage : (bug_class * support) list;
  application_agnostic : bool;
  library_agnostic : bool;
}

(** Table 1, row by row. *)
let table1 : tool_profile list =
  let c cls s = (cls, s) in
  [
    {
      tool = "pmemcheck";
      coverage =
        [ c Durability With_annotations; c Redundant_flush Yes; c Transient_data Conflated ];
      application_agnostic = false;
      library_agnostic = false;
    };
    {
      tool = "PMTest";
      coverage =
        [ c Durability With_annotations; c Atomicity With_annotations;
          c Ordering With_annotations; c Redundant_flush Yes ];
      application_agnostic = false;
      library_agnostic = false;
    };
    {
      tool = "XFDetector";
      coverage =
        [ c Durability With_annotations; c Atomicity With_annotations;
          c Ordering With_annotations; c Redundant_flush Yes; c Redundant_fence Yes ];
      application_agnostic = false;
      library_agnostic = false;
    };
    {
      tool = "PMDebugger";
      coverage =
        [ c Durability Yes; c Atomicity With_annotations; c Ordering With_annotations;
          c Redundant_flush Yes; c Transient_data Conflated ];
      application_agnostic = false;
      library_agnostic = false;
    };
    {
      tool = "Yat";
      coverage = [ c Durability Yes; c Atomicity Yes; c Ordering Yes ];
      application_agnostic = false;
      library_agnostic = false;
    };
    {
      tool = "Jaaru";
      coverage = [ c Durability Yes; c Atomicity Yes; c Ordering Yes ];
      application_agnostic = true;
      library_agnostic = true;
    };
    {
      tool = "Agamotto";
      coverage =
        [ c Durability Yes; c Atomicity With_annotations (* PMDK TXs *);
          c Redundant_flush Yes; c Redundant_fence Yes; c Transient_data Conflated ];
      application_agnostic = true;
      library_agnostic = false;
    };
    {
      tool = "Witcher";
      coverage =
        [ c Durability Yes; c Atomicity Yes; c Ordering Yes; c Redundant_flush Yes;
          c Redundant_fence Yes ];
      application_agnostic = false;
      library_agnostic = true;
    };
    {
      tool = "Mumak";
      coverage =
        [ c Durability Yes; c Atomicity Yes; c Ordering Yes; c Redundant_flush Yes;
          c Redundant_fence Yes; c Transient_data Yes ];
      application_agnostic = true;
      library_agnostic = true;
    };
  ]

let support_to_string = function
  | No -> ""
  | Yes -> "Y"
  | With_annotations -> "Y*"
  | Conflated -> "Y+"

let pp_table1 ppf () =
  Fmt.pf ppf "%-12s" "Tool";
  List.iter (fun cls -> Fmt.pf ppf " %-16s" (class_to_string cls)) all_classes;
  Fmt.pf ppf " %-9s %-8s@." "App-agn." "Lib-agn.";
  List.iter
    (fun p ->
      Fmt.pf ppf "%-12s" p.tool;
      List.iter
        (fun cls ->
          let s = Option.value ~default:No (List.assoc_opt cls p.coverage) in
          Fmt.pf ppf " %-16s" (support_to_string s))
        all_classes;
      Fmt.pf ppf " %-9s %-8s@."
        (if p.application_agnostic then "Y" else "")
        (if p.library_agnostic then "Y" else ""))
    table1
