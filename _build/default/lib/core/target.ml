(** The black-box application abstraction Mumak analyses.

    A target is exactly what the paper's pipeline takes as input: an
    application "binary" (here: a closure that formats a pool and drives the
    whole workload against a device) plus the application's own recovery
    procedure. Nothing else about the application is known — no semantics,
    no annotations. Determinism of [run] is required for reproducible fault
    injection (the paper neutralises randomness in the same way, section 5). *)

type t = {
  name : string;
  pool_size : int;
  loc : int;
      (** rough size of the target's codebase in source lines, metadata for
          the scalability experiment (Figure 5) *)
  run : device:Pmem.Device.t -> framer:Pmtrace.Framer.t -> unit;
      (** format the pool and execute the full workload; must be
          deterministic *)
  recover : Pmem.Device.t -> (unit, string) result;
      (** the application's recovery procedure, used as the consistency
          oracle: [Error] = state deemed unrecoverable; exceptions = the
          recovery itself crashed *)
}

let make ~name ~pool_size ?(loc = 0) ~run ~recover () =
  (* Install the framer as ambient for the duration of the run, so library
     internals (allocator, logs) can announce their loop bodies too. *)
  let run ~device ~framer =
    Pmtrace.Framer.with_ambient framer (fun () -> run ~device ~framer)
  in
  { name; pool_size; loc; run; recover }
