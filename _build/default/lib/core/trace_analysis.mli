(** Trace analysis (paper section 4.2): a single streaming pass over the PM
    access stream detecting the bug classes fault injection cannot see.

    The five patterns:
    - a store never explicitly persisted → durability bug if its address is
      ever flushed during the execution, otherwise a transient-data warning
      (both suppressed under {!Config.t.eadr});
    - a flush of a volatile address or of a clean line → redundant flush;
    - a flush capturing more than one store → warning;
    - a fence with nothing pending → redundant fence;
    - a fence draining more than one flush/NT store → unordered-persist
      warning (the reorderings Mumak deliberately does not explore). *)

type t

type raw = { kind : Report.kind; seq : int; detail : string }
(** A finding identified by instruction counter; the engine attaches call
    stacks afterwards with one extra minimally-instrumented execution. *)

val create : Config.t -> t

val feed : t -> Pmtrace.Event.t -> unit
(** Consume one event; O(touched lines/slots). *)

val finish : t -> raw list
(** End-of-trace classification; returns all findings in trace order. *)

val event_count : t -> int
