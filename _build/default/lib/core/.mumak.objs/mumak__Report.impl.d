lib/core/report.ml: Fmt Hashtbl List Pmtrace Printf
