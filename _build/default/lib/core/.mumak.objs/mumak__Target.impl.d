lib/core/target.ml: Pmem Pmtrace
