lib/core/fp_tree.ml: Buffer List Option Pmtrace String
