lib/core/report.mli: Format Pmtrace
