lib/core/engine.mli: Config Format Hashtbl Metrics Pmem Pmtrace Report Target
