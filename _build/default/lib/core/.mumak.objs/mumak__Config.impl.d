lib/core/config.ml:
