lib/core/fault_injection.ml: Config Fp_tree Fun List Oracle Pmem Pmtrace Target
