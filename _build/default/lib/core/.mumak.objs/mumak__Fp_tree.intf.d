lib/core/fp_tree.mli: Pmtrace
