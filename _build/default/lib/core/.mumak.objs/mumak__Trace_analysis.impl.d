lib/core/trace_analysis.ml: Config Hashtbl List Pmem Pmtrace Printf Report
