lib/core/engine.ml: Config Fault_injection Fmt Fp_tree Hashtbl List Metrics Oracle Pmem Pmtrace Report Target Trace_analysis
