lib/core/taxonomy.ml: Fmt List Option
