lib/core/metrics.ml: Fmt Gc Sys Unix
