lib/core/fault_injection.mli: Config Fp_tree Oracle Pmem Pmtrace Target
