lib/core/oracle.ml: Printexc
