lib/core/trace_analysis.mli: Config Pmtrace Report
