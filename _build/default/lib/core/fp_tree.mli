(** The failure-point tree (paper section 4.1 and Figure 2).

    Each root-to-leaf path is a unique call stack leading to a failure
    point; a leaf additionally carries the per-frame instruction index that
    distinguishes, say, line 2 from line 3 of the same function. One fault
    is injected per leaf. *)

type point = {
  capture : Pmtrace.Callstack.capture;
  mutable visited : bool;
  ordinal : int;  (** discovery order, stable across runs *)
}

type t

val create : unit -> t
val size : t -> int

val insert : t -> Pmtrace.Callstack.capture -> [ `Added of point | `Existing of point ]
(** Add a failure point if its path is new. *)

val find : t -> Pmtrace.Callstack.capture -> point option
(** Membership lookup — the hot operation of the injection phase. *)

val iter : t -> (point -> unit) -> unit

val unvisited_count : t -> int

val points : t -> point list
(** All points in discovery order. *)

val serialize : t -> string
(** One line per failure point — the analogue of the file the original
    Mumak passes between the tree-construction and injection executions. *)

val deserialize : string -> t
