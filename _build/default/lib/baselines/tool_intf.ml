(** Common interface of the comparison tools (paper section 6.1).

    Every baseline re-implements its published approach against the same
    simulated substrate, doing the actual work its algorithm prescribes, so
    the relative analysis costs (Figure 4) and resource footprints (Table 2)
    reproduce the paper's shape. A wall-clock budget plays the role of the
    12-hour timeout; a tool that exhausts it returns partial results with
    [timed_out = true] (rendered as the ∞ bars).

    [tracking_words] approximates the peak size of the tool's own analysis
    structures (shadow memory, invariant tables, SE states) for the RAM
    column of Table 2. *)

type result = {
  tool : string;
  report : Mumak.Report.t;
  metrics : Mumak.Metrics.t;
  timed_out : bool;
  work_done : int;  (** units of work completed (tool-specific) *)
  work_total : int;  (** units the full analysis would need *)
  tracking_words : int;
  pm_overhead : float;  (** PM usage relative to the application's own, ×  *)
}

module type TOOL = sig
  val name : string

  val analyze : ?budget_s:float -> Mumak.Target.t -> result
  (** Analyse the target within the wall-clock budget (default 60 s). *)
end

(** Deadline helper shared by the tools. *)
type clock = { start : float; budget : float }

let clock ?(budget_s = 60.) () = { start = Unix.gettimeofday (); budget = budget_s }
let expired c = Unix.gettimeofday () -. c.start > c.budget

let run_instrumented ?(trace_loads = false) (target : Mumak.Target.t) ~listener =
  let device = Pmem.Device.create ~size:target.Mumak.Target.pool_size () in
  Pmem.Device.trace_loads device trace_loads;
  let tracer = Pmtrace.Tracer.create ~collect:false device in
  Pmtrace.Tracer.add_listener tracer listener;
  target.Mumak.Target.run ~device
    ~framer:(Pmtrace.Framer.of_callstack (Pmtrace.Tracer.stack tracer));
  Pmtrace.Tracer.detach tracer;
  device
