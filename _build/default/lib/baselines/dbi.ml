(** Dynamic-binary-instrumentation platform overhead model.

    The original tools do not run native: pmemcheck/PMDebugger live inside
    Valgrind and XFDetector/Witcher inside Intel Pin, paying
    translation-cache lookups and shadow-state maintenance on {e every}
    memory access — a 20-50x slowdown that the published analysis times
    include. Our listeners are native OCaml callbacks, so that platform
    cost must be charged explicitly or the trace-analysis tools come out
    unrealistically fast relative to the re-execution-based ones.

    The model does real work shaped like the real thing: per instrumented
    event, a burst of translation-cache probes (hash + lookup + occasional
    insertion) against a bounded table. [charge] cost units approximate one
    Valgrind-instrumented memory access; the constant is calibrated so that
    the simulated PMDebugger lands in the published ratio band relative to
    Mumak (EXPERIMENTS.md, E-F4b). *)

let cache : (int, int) Hashtbl.t = Hashtbl.create 4096
let counter = ref 0

(* Probes per instrumented event. *)
let valgrind_event_cost = 700

let charge ?(cost = valgrind_event_cost) () =
  for _ = 1 to cost do
    incr counter;
    let key = !counter land 0xFFF in
    match Hashtbl.find_opt cache key with
    | Some v -> if v land 63 = 0 then Hashtbl.replace cache key (v + 1)
    | None -> Hashtbl.replace cache key 1
  done
