lib/baselines/tool_intf.ml: Mumak Pmem Pmtrace Unix
