lib/baselines/agamotto.ml: Hashtbl Kv_target List Mumak Pmem Pmtrace Tool_intf
