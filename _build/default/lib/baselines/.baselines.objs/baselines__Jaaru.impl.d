lib/baselines/jaaru.ml: Hashtbl List Mumak Pmem Pmtrace Tool_intf
