lib/baselines/yat.ml: Mumak Pmem Pmtrace Seq Tool_intf
