lib/baselines/kv_target.ml: Hashtbl List Mumak Pmalloc Pmapps Pmem Pmtrace Targets Workload
