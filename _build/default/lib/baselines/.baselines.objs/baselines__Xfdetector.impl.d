lib/baselines/xfdetector.ml: Dbi Fun Hashtbl List Mumak Pmem Pmtrace Tool_intf
