lib/baselines/dbi.ml: Hashtbl
