lib/baselines/witcher.ml: Fun Hashtbl Kv_target List Mumak Option Pmem Pmtrace Seq Tool_intf
