lib/baselines/pmdebugger.ml: Dbi Hashtbl Int List Map Mumak Pmalloc Pmem Pmtrace Printf Tool_intf
