(** The richer target interface some baselines require.

    Mumak's {!Mumak.Target.t} is deliberately black-box; Witcher, by
    contrast, "requires developers to implement a driver" with key-value
    semantics (Table 3), and Agamotto explores program paths rather than a
    fixed execution. This record carries that extra knowledge: the concrete
    op list, prefix execution, and a post-crash probe. *)

type t = {
  base : Mumak.Target.t;
  ops : Workload.op list;
  app : Pmapps.Kv_intf.app;
  version : Pmalloc.Version.t;
  run_prefix :
    device:Pmem.Device.t ->
    framer:Pmtrace.Framer.t ->
    ?on_op:(int -> unit) ->
    upto:int ->
    unit ->
    unit;
      (** format + execute only the first [upto] operations; [on_op i]
          fires before operation [i] *)
  probe : Pmem.Device.t -> int64 list -> int64 option list;
      (** library-recover the crash image and read back each key *)
}

let apply_op (type a) (module A : Pmapps.Kv_intf.S with type t = a) (app : a) op =
  match op with
  | Workload.Put (k, v) -> A.put app ~key:k ~value:v
  | Workload.Get k -> ignore (A.get app ~key:k)
  | Workload.Delete k -> ignore (A.delete app ~key:k)

let make (module A : Pmapps.Kv_intf.S) ?(version = Pmalloc.Version.V1_12) ~workload () =
  let base = Targets.of_app (module A) ~version ~workload () in
  let run_prefix ~device ~framer ?(on_op = fun _ -> ()) ~upto () =
    Pmtrace.Framer.with_ambient framer (fun () ->
        let pool = Pmalloc.Pool.create ~version device in
        let heap = Pmalloc.Alloc.attach pool in
        let app = A.create ~framer pool heap in
        List.iteri
          (fun i op ->
            if i < upto then begin
              on_op i;
              apply_op (module A) app op
            end)
          workload)
  in
  let probe dev keys =
    match Pmalloc.Recovery.open_pool dev with
    | exception Pmalloc.Pool.Corrupted _ | exception Pmalloc.Pool.Not_initialised ->
        List.map (fun _ -> None) keys
    | pool, heap, _ ->
        if Pmalloc.Pool.root pool = None then List.map (fun _ -> None) keys
        else
          let app = A.open_existing pool heap in
          List.map (fun key -> A.get app ~key) keys
  in
  { base; ops = workload; app = (module A); version; run_prefix; probe }

(** The key-value state a correct execution of the first [upto] ops leaves
    behind — the "expected output" side of Witcher's output-equivalence
    check. *)
let model_after ops ~upto =
  let m = Hashtbl.create 256 in
  List.iteri
    (fun i op ->
      if i < upto then
        match op with
        | Workload.Put (k, v) -> Hashtbl.replace m k v
        | Workload.Delete k -> Hashtbl.remove m k
        | Workload.Get _ -> ())
    ops;
  m

let keys_of ops =
  List.filter_map
    (function Workload.Put (k, _) | Workload.Get k | Workload.Delete k -> Some k)
    ops
  |> List.sort_uniq compare
