(** Registry of seeded bugs.

    Every application and library in this reproduction contains named bug
    sites that are compiled in but disabled by default (the default build is
    clean). Enabling a bug id makes the corresponding code path misbehave in
    the way the published bug did. The coverage experiment (paper section
    6.2) enables sets of bugs and measures which tools report them.

    The registry is global mutable state on purpose: it plays the role of
    "which version of the buggy source tree are we testing", which in the
    original evaluation is fixed per run. *)

type taxonomy =
  | Durability
  | Atomicity
  | Ordering
  | Redundant_flush
  | Redundant_fence
  | Transient_data

let taxonomy_to_string = function
  | Durability -> "durability"
  | Atomicity -> "atomicity"
  | Ordering -> "ordering"
  | Redundant_flush -> "redundant-flush"
  | Redundant_fence -> "redundant-fence"
  | Transient_data -> "transient-data"

let is_correctness = function
  | Durability | Atomicity | Ordering -> true
  | Redundant_flush | Redundant_fence | Transient_data -> false

type t = {
  id : string;
  component : string;  (** library or application containing the bug *)
  taxonomy : taxonomy;
  description : string;
  detectors : string list;
      (** ground truth: the tools whose published approach finds this class
          of bug at this site (used to score coverage) *)
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 64
let enabled_set : (string, unit) Hashtbl.t = Hashtbl.create 16

let register ~id ~component ~taxonomy ~description ~detectors =
  if Hashtbl.mem registry id then invalid_arg ("Bugreg.register: duplicate id " ^ id);
  let bug = { id; component; taxonomy; description; detectors } in
  Hashtbl.replace registry id bug;
  bug

let find id = Hashtbl.find_opt registry id
let all () =
  Hashtbl.fold (fun _ b acc -> b :: acc) registry []
  |> List.sort (fun a b -> compare a.id b.id)

let enable id =
  if not (Hashtbl.mem registry id) then invalid_arg ("Bugreg.enable: unknown bug " ^ id);
  Hashtbl.replace enabled_set id ()

let disable id = Hashtbl.remove enabled_set id
let disable_all () = Hashtbl.reset enabled_set
let enabled id = Hashtbl.mem enabled_set id
let enabled_ids () = Hashtbl.fold (fun id () acc -> id :: acc) enabled_set [] |> List.sort compare

(** [with_enabled ids f] runs [f] with exactly [ids] enabled, restoring the
    previous enable-set afterwards. *)
let with_enabled ids f =
  let saved = enabled_ids () in
  disable_all ();
  List.iter enable ids;
  Fun.protect
    ~finally:(fun () ->
      disable_all ();
      List.iter enable saved)
    f

let pp ppf b =
  Fmt.pf ppf "%-28s %-12s %-14s %s" b.id b.component (taxonomy_to_string b.taxonomy)
    b.description
