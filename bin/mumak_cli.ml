(* The user-facing driver — the analogue of the Bash frontend of the
   original artifact. Analyse a named target with a generated workload and
   print the combined bug report. *)

open Cmdliner

let registry_names =
  List.map (fun (module A : Pmapps.Kv_intf.S) -> A.name) Pmapps.Registry.apps
  @ [ "montage.hashtable"; "montage.lf_hashtable"; "pmemkv.cmap"; "pmemkv.stree";
      "redis"; "rocksdb" ]

let build_target ~name ~version ~grouped ~workload =
  match name with
  | "montage.hashtable" -> Some (Targets.of_montage ~variant:`Buffered ~workload ())
  | "montage.lf_hashtable" -> Some (Targets.of_montage ~variant:`Lockfree ~workload ())
  | "pmemkv.cmap" -> Some (Targets.of_pmemkv ~engine:Kvstores.Pmemkv.Cmap ~workload ())
  | "pmemkv.stree" -> Some (Targets.of_pmemkv ~engine:Kvstores.Pmemkv.Stree ~workload ())
  | "redis" -> Some (Targets.of_redis ~workload ())
  | "rocksdb" -> Some (Targets.of_rocksdb ~workload ())
  | app ->
      Option.map
        (fun m ->
          let tx_mode = if grouped then Targets.Grouped 64 else Targets.Spt in
          Targets.of_app m ~version ~tx_mode ~workload ())
        (Pmapps.Registry.find app)

let run name ops key_range seed version_str grouped strategy_str bugs no_warnings
    store_level jobs static =
  let version =
    match version_str with
    | "1.6" -> Pmalloc.Version.V1_6
    | "1.8" -> Pmalloc.Version.V1_8
    | "1.12" -> Pmalloc.Version.V1_12
    | v -> Fmt.failwith "unknown library version %s (1.6 | 1.8 | 1.12)" v
  in
  let workload = Workload.standard ~ops ~key_range ~seed:(Int64.of_int seed) in
  List.iter Bugreg.enable bugs;
  match build_target ~name ~version ~grouped ~workload with
  | None ->
      Fmt.epr "unknown target %s; available: %a@." name
        Fmt.(list ~sep:comma string)
        registry_names;
      exit 1
  | Some target ->
      let strategy =
        match strategy_str with
        | "snapshot" -> Mumak.Config.Snapshot
        | "reexecute" -> Mumak.Config.Reexecute
        | s -> Fmt.failwith "unknown strategy %s (snapshot | reexecute)" s
      in
      let config =
        {
          Mumak.Config.default with
          Mumak.Config.strategy = (if static then Mumak.Config.Reexecute else strategy);
          report_warnings = not no_warnings;
          granularity =
            (if store_level then Mumak.Config.Store_level
             else Mumak.Config.Persistency_instruction);
          static;
          prioritize = static;
          jobs = max 1 jobs;
        }
      in
      let result = Mumak.Engine.analyze ~config target in
      Fmt.pr "%a@." Mumak.Engine.pp_result result;
      (match (result.Mumak.Engine.static, result.Mumak.Engine.first_bug_injection) with
      | Some s, first ->
          Fmt.pr "static analysis: %d raw findings, %d hot windows over %d recordings@."
            (List.length s.Analysis.Static.findings)
            (List.length s.Analysis.Static.hot_windows)
            s.Analysis.Static.runs;
          Fmt.pr "first bug at injection: %s (invariant-guided order)@."
            (match first with Some n -> string_of_int n | None -> "none found")
      | None, _ -> ());
      if Mumak.Report.bugs result.Mumak.Engine.report <> [] then exit 2

let name_arg =
  let doc = "Target application to analyse." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TARGET" ~doc)

let ops_arg = Arg.(value & opt int 600 & info [ "ops" ] ~doc:"Workload size (operations).")
let key_range_arg =
  Arg.(value & opt int 200 & info [ "key-range" ] ~doc:"Number of distinct keys.")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload seed.")
let version_arg =
  Arg.(value & opt string "1.12" & info [ "library-version" ] ~doc:"pmalloc version.")
let grouped_arg =
  Arg.(value & flag & info [ "grouped" ] ~doc:"Group puts in enclosing transactions (non-SPT).")
let strategy_arg =
  Arg.(value & opt string "snapshot" & info [ "strategy" ] ~doc:"snapshot | reexecute.")
let bugs_arg =
  Arg.(value & opt_all string [] & info [ "enable-bug" ] ~doc:"Enable a seeded bug id.")
let no_warnings_arg = Arg.(value & flag & info [ "no-warnings" ] ~doc:"Suppress warnings.")
let store_level_arg =
  Arg.(value & flag & info [ "store-level" ] ~doc:"Inject at every store (ablation).")
let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the re-execute injection loop (1 = sequential). \
           Reports are identical for any N; only used with --strategy reexecute.")

let static_arg =
  Arg.(
    value & flag
    & info [ "static" ]
        ~doc:
          "Run the offline persistency dependency-graph analyzer before fault \
           injection: records whole traces, mines likely ordering/atomicity \
           invariants, attaches fix suggestions to findings, and reorders the \
           injection loop so statically-suspicious failure points are tried \
           first. Implies --strategy reexecute.")

let analyze_cmd =
  let doc = "Detect crash-consistency and performance bugs in a PM application." in
  Cmd.v
    (Cmd.info "analyze" ~doc)
    Term.(
      const run $ name_arg $ ops_arg $ key_range_arg $ seed_arg $ version_arg
      $ grouped_arg $ strategy_arg $ bugs_arg $ no_warnings_arg $ store_level_arg
      $ jobs_arg $ static_arg)

let list_cmd =
  let doc = "List available targets and seeded bugs." in
  Cmd.v (Cmd.info "list" ~doc)
    Term.(
      const (fun () ->
          Fmt.pr "Targets:@.";
          List.iter (Fmt.pr "  %s@.") registry_names;
          Fmt.pr "@.Seeded bugs:@.";
          List.iter (fun b -> Fmt.pr "  %a@." Bugreg.pp b) (Bugreg.all ()))
      $ const ())

let () =
  let info = Cmd.info "mumak" ~doc:"Black-box bug detection for persistent memory" in
  exit (Cmd.eval (Cmd.group info [ analyze_cmd; list_cmd ]))
