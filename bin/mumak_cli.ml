(* The user-facing driver — the analogue of the Bash frontend of the
   original artifact. Analyse a named target with a generated workload and
   print the combined bug report.

   Exit codes (scriptable contract): 0 = analysis ran and found no bugs,
   1 = analysis ran and found bugs, 2 = usage or engine error. *)

open Cmdliner

let registry_names =
  List.map (fun (module A : Pmapps.Kv_intf.S) -> A.name) Pmapps.Registry.apps
  @ [ "montage.hashtable"; "montage.lf_hashtable"; "pmemkv.cmap"; "pmemkv.stree";
      "redis"; "rocksdb" ]

let build_target ~name ~version ~grouped ~workload =
  match name with
  | "montage.hashtable" -> Some (Targets.of_montage ~variant:`Buffered ~workload ())
  | "montage.lf_hashtable" -> Some (Targets.of_montage ~variant:`Lockfree ~workload ())
  | "pmemkv.cmap" -> Some (Targets.of_pmemkv ~engine:Kvstores.Pmemkv.Cmap ~workload ())
  | "pmemkv.stree" -> Some (Targets.of_pmemkv ~engine:Kvstores.Pmemkv.Stree ~workload ())
  | "redis" -> Some (Targets.of_redis ~workload ())
  | "rocksdb" -> Some (Targets.of_rocksdb ~workload ())
  | app ->
      Option.map
        (fun m ->
          let tx_mode = if grouped then Targets.Grouped 64 else Targets.Spt in
          Targets.of_app m ~version ~tx_mode ~workload ())
        (Pmapps.Registry.find app)

let usage_error fmt = Fmt.kstr (fun msg -> Fmt.epr "mumak: %s@." msg; exit 2) fmt

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let run name ops key_range seed version_str grouped strategy_str bugs no_warnings
    store_level jobs static lint verify_fixes absint prune trace_out metrics_out progress
    store_dir =
  let version =
    match version_str with
    | "1.6" -> Pmalloc.Version.V1_6
    | "1.8" -> Pmalloc.Version.V1_8
    | "1.12" -> Pmalloc.Version.V1_12
    | v -> usage_error "unknown library version %s (1.6 | 1.8 | 1.12)" v
  in
  let workload = Workload.standard ~ops ~key_range ~seed:(Int64.of_int seed) in
  List.iter Bugreg.enable bugs;
  match build_target ~name ~version ~grouped ~workload with
  | None ->
      usage_error "unknown target %s; available: %a" name
        Fmt.(list ~sep:comma string)
        registry_names
  | Some target ->
      let jobs = max 1 jobs in
      (* --prune skips injections, which only exist under re-execution, and
         needs the abstract fixpoint to nominate them *)
      let absint = absint || prune in
      let strategy =
        (* --static needs invariant-guided prioritization, which targets the
           live re-execution loop; --absint/--prune and --jobs work under
           replay (the default) or reexecute, so a snapshot request is
           upgraded to replay when they are on *)
        if static then Mumak.Config.Reexecute
        else
          match strategy_str with
          | "replay" -> Mumak.Config.Replay
          | "snapshot" ->
              if absint || jobs > 1 then Mumak.Config.Replay else Mumak.Config.Snapshot
          | "reexecute" -> Mumak.Config.Reexecute
          | s -> usage_error "unknown strategy %s (replay | snapshot | reexecute)" s
      in
      let config =
        {
          Mumak.Config.default with
          Mumak.Config.strategy;
          report_warnings = not no_warnings;
          granularity =
            (if store_level then Mumak.Config.Store_level
             else Mumak.Config.Persistency_instruction);
          static;
          prioritize = static;
          jobs;
          (* --verify-fixes without --lint would verify static fixes only;
             implying lint keeps the CLI contract simple: verification always
             covers every fix suggestion the run produced *)
          lint = lint || verify_fixes;
          verify_fixes;
          absint;
          prune;
        }
      in
      if trace_out <> None || metrics_out <> None then Telemetry.Collector.enable ();
      if progress then Telemetry.Progress.activate ();
      let result =
        try Mumak.Engine.analyze ~config target
        with exn ->
          Fmt.epr "mumak: engine error: %s@." (Printexc.to_string exn);
          exit 2
      in
      if trace_out <> None || metrics_out <> None then begin
        let dump = Telemetry.Collector.drain () in
        Option.iter
          (fun path -> write_file path (Telemetry.Chrome_trace.to_string dump))
          trace_out;
        Option.iter
          (fun path -> write_file path (Telemetry.Jsonl.to_string dump))
          metrics_out
      end;
      Fmt.pr "%a@." Mumak.Engine.pp_result result;
      (match result.Mumak.Engine.static with
      | Some s ->
          Fmt.pr "static analysis: %d raw findings, %d hot windows over %d recordings@."
            (List.length s.Analysis.Static.findings)
            (List.length s.Analysis.Static.hot_windows)
            s.Analysis.Static.runs
      | None -> ());
      Fmt.pr "first bug at injection: %s@."
        (match result.Mumak.Engine.first_bug_injection with
        | Some n -> string_of_int n
        | None -> "none found");
      (match store_dir with
      | None -> ()
      | Some dir ->
          (* The workload descriptor is part of the run's content address:
             anything that changes what the target executed (including which
             seeded bugs were armed) must change the run id. *)
          let workload_desc =
            Printf.sprintf "standard:ops=%d,keys=%d,seed=%d,version=%s,grouped=%b%s" ops
              key_range seed version_str grouped
              (match bugs with
              | [] -> ""
              | l -> ",bugs=" ^ String.concat "+" (List.sort compare l))
          in
          let record =
            Store.Record.of_result ~target:name ~workload:workload_desc ~config result
          in
          let ledger = Store.Ledger.open_ ~dir () in
          let id = Store.Ledger.append_run ledger record in
          Fmt.pr "recorded run %s in %s@." id dir);
      exit (if Mumak.Report.bugs result.Mumak.Engine.report <> [] then 1 else 0)

let name_arg =
  let doc = "Target application to analyse." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TARGET" ~doc)

let ops_arg = Arg.(value & opt int 600 & info [ "ops" ] ~doc:"Workload size (operations).")
let key_range_arg =
  Arg.(value & opt int 200 & info [ "key-range" ] ~doc:"Number of distinct keys.")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload seed.")
let version_arg =
  Arg.(value & opt string "1.12" & info [ "library-version" ] ~doc:"pmalloc version.")
let grouped_arg =
  Arg.(value & flag & info [ "grouped" ] ~doc:"Group puts in enclosing transactions (non-SPT).")
let strategy_arg =
  Arg.(
    value & opt string "replay"
    & info [ "strategy" ]
        ~doc:
          "replay | snapshot | reexecute. The default, replay, records the \
           workload once and materializes every failure point's crash image \
           offline from that recording.")
let bugs_arg =
  Arg.(value & opt_all string [] & info [ "enable-bug" ] ~doc:"Enable a seeded bug id.")
let no_warnings_arg = Arg.(value & flag & info [ "no-warnings" ] ~doc:"Suppress warnings.")
let store_level_arg =
  Arg.(value & flag & info [ "store-level" ] ~doc:"Inject at every store (ablation).")
let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the replay/re-execute injection loop (1 = \
           sequential). Reports are identical for any N.")

let static_arg =
  Arg.(
    value & flag
    & info [ "static" ]
        ~doc:
          "Run the offline persistency dependency-graph analyzer before fault \
           injection: records whole traces, mines likely ordering/atomicity \
           invariants, attaches fix suggestions to findings, and reorders the \
           injection loop so statically-suspicious failure points are tried \
           first. Implies --strategy reexecute.")

let lint_arg =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:
          "Run the epoch-based anti-pattern detectors over a recorded trace: \
           duplicate/unnecessary flushes, redundant fences and missing-flush \
           hot spots, each with a code path, a concrete fix and an estimated \
           cycles/events saving. Costs one extra instrumented execution.")

let absint_arg =
  Arg.(
    value & flag
    & info [ "absint" ]
        ~doc:
          "Merge the recorded traces into one control-flow automaton and \
           abstract-interpret it with a per-cache-line persistency lattice: \
           reports missing-flush / missing-fence / ordering findings on \
           merged paths no single recording exercised, each with a concrete \
           path witness.")

let prune_arg =
  Arg.(
    value & flag
    & info [ "prune" ]
        ~doc:
          "Skip fault injections the abstract fixpoint proves safe on every \
           merged path, after confirming each skipped point's replayed crash \
           image against the recovery oracle offline — the report is \
           byte-identical to the unpruned run. Implies --absint.")

let verify_fixes_arg =
  Arg.(
    value & flag
    & info [ "verify-fixes" ]
        ~doc:
          "Verify every fix suggestion (static and lint) by rewriting the \
           recorded trace, replaying it and re-running the crash-consistency \
           oracle and the detectors over the result: verdicts proven / \
           ineffective / harmful, printed under each finding. Implies --lint.")

let trace_out_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON timeline of the run to $(docv) \
           (open with chrome://tracing or Perfetto): one track per worker \
           domain plus the main pipeline track. Telemetry is collected only \
           when this or --metrics-out is given and provably does not change \
           the analysis result.")

let metrics_out_arg =
  Arg.(
    value & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the run's spans, counters and latency histograms as \
           append-friendly JSON Lines to $(docv) (versioned schema; first \
           record is the header). See `mumak validate'.")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:
          "Redraw a live one-line progress report on stderr (injections/sec, \
           ETA, first-bug marker). Automatically silent when stderr is not a \
           terminal.")

let store_arg =
  Arg.(
    value & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Append this run to the results ledger in $(docv): a \
           content-addressed run record carrying the report, counters, \
           metrics and a provenance record per finding. Query it later with \
           `mumak query', `mumak explain' and `mumak diff'.")

let analyze_term =
  Term.(
    const run $ name_arg $ ops_arg $ key_range_arg $ seed_arg $ version_arg
    $ grouped_arg $ strategy_arg $ bugs_arg $ no_warnings_arg $ store_level_arg
    $ jobs_arg $ static_arg $ lint_arg $ verify_fixes_arg $ absint_arg $ prune_arg
    $ trace_out_arg $ metrics_out_arg $ progress_arg $ store_arg)

let analyze_cmd =
  let doc = "Detect crash-consistency and performance bugs in a PM application." in
  Cmd.v (Cmd.info "analyze" ~doc) analyze_term

(* ------------------------------------------------------------------ *)
(* optimize: the cost-model-driven transformation pipeline             *)
(* ------------------------------------------------------------------ *)

let optimize name ops key_range seed version_str grouped bugs fit_cost jobs progress
    store_dir =
  let version =
    match version_str with
    | "1.6" -> Pmalloc.Version.V1_6
    | "1.8" -> Pmalloc.Version.V1_8
    | "1.12" -> Pmalloc.Version.V1_12
    | v -> usage_error "unknown library version %s (1.6 | 1.8 | 1.12)" v
  in
  let workload = Workload.standard ~ops ~key_range ~seed:(Int64.of_int seed) in
  List.iter Bugreg.enable bugs;
  match build_target ~name ~version ~grouped ~workload with
  | None ->
      usage_error "unknown target %s; available: %a" name
        Fmt.(list ~sep:comma string)
        registry_names
  | Some target ->
      let config = { Mumak.Config.optimizing with fit_cost; jobs = max 1 jobs } in
      if progress then Telemetry.Progress.activate ();
      let result =
        try Mumak.Engine.analyze ~config target
        with exn ->
          Fmt.epr "mumak: engine error: %s@." (Printexc.to_string exn);
          exit 2
      in
      Fmt.pr "%a@." Mumak.Engine.pp_result result;
      (match result.Mumak.Engine.opt with
      | None -> ()
      | Some o ->
          let shipped = Analysis.Opt.shipped o in
          (* the scriptable summary line CI gates on *)
          Fmt.pr "optimize: proven=%d ineffective=%d harmful=%d shipped=%d@."
            o.Analysis.Opt.proven o.Analysis.Opt.ineffective o.Analysis.Opt.harmful
            (List.length shipped);
          List.iteri
            (fun i (b : Analysis.Opt.bundle) ->
              Fmt.pr "bundle %d: [%s] %s — saves %d event(s) / %d modelled cycle(s)@." (i + 1)
                b.Analysis.Opt.b_plan.Analysis.Opt.p_rule
                (Analysis.Fix.to_string b.Analysis.Opt.b_plan.Analysis.Opt.p_fix)
                b.Analysis.Opt.b_measured_events b.Analysis.Opt.b_measured_cycles;
              List.iter
                (fun e -> Fmt.pr "    edit: %s@." (Pmtrace.Replay.edit_to_string e))
                b.Analysis.Opt.b_plan.Analysis.Opt.p_edits)
            shipped);
      (match store_dir with
      | None -> ()
      | Some dir ->
          let workload_desc =
            Printf.sprintf "standard:ops=%d,keys=%d,seed=%d,version=%s,grouped=%b%s" ops
              key_range seed version_str grouped
              (match bugs with
              | [] -> ""
              | l -> ",bugs=" ^ String.concat "+" (List.sort compare l))
          in
          let record =
            Store.Record.of_result ~target:name ~workload:workload_desc ~config result
          in
          let ledger = Store.Ledger.open_ ~dir () in
          let id = Store.Ledger.append_run ledger record in
          Fmt.pr "recorded run %s in %s@." id dir);
      exit 0

let fit_cost_arg =
  Arg.(
    value & flag
    & info [ "fit-cost" ]
        ~doc:
          "Fit the cost model's cycle weights from a timed replay of the \
           recording instead of the deterministic static table (only plan \
           rankings change, never verdicts).")

let optimize_cmd =
  let doc =
    "Synthesize persist transformations (fence batching, flush coalescing \
     and hoisting, non-temporal and clwb conversions) over the recorded \
     trace, rank them with the cost model, and verify each plan by replay \
     at every failure point of the rewritten trace under both crash views. \
     Only proven plans ship as the ranked patch bundle."
  in
  Cmd.v (Cmd.info "optimize" ~doc)
    Term.(
      const optimize $ name_arg $ ops_arg $ key_range_arg $ seed_arg $ version_arg
      $ grouped_arg $ bugs_arg $ fit_cost_arg $ jobs_arg $ progress_arg $ store_arg)

let list_cmd =
  let doc = "List available targets and seeded bugs." in
  Cmd.v (Cmd.info "list" ~doc)
    Term.(
      const (fun () ->
          Fmt.pr "Targets:@.";
          List.iter (Fmt.pr "  %s@.") registry_names;
          Fmt.pr "@.Seeded bugs:@.";
          List.iter (fun b -> Fmt.pr "  %a@." Bugreg.pp b) (Bugreg.all ()))
      $ const ())

(* ------------------------------------------------------------------ *)
(* query / explain / diff: the results-store surface                   *)
(* ------------------------------------------------------------------ *)

let ledger_dir_arg =
  Arg.(
    value & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Results ledger directory (default: $(b,MUMAK_STORE) or \
           _mumak/store).")

let open_ledger dir = Store.Ledger.open_ ?dir ()

let short id = String.sub id 0 (min 12 (String.length id))

(* The optimize-phase bundles of a recorded run, read back from the
   ledger's phase summary. *)
let run_bundles (r : Store.Record.t) =
  let open Telemetry.Json in
  match List.assoc_opt "optimize" r.Store.Record.phases with
  | None -> None
  | Some opt_json ->
      Some (Option.value ~default:[] (Option.bind (member "bundles" opt_json) to_list_opt))

let pp_ledger_bundle i b =
  let open Telemetry.Json in
  let str j k = Option.value ~default:"?" (Option.bind (member k j) to_string_opt) in
  let num j k = Option.value ~default:0 (Option.bind (member k j) to_int_opt) in
  let plan = Option.value ~default:(Assoc []) (member "plan" b) in
  Fmt.pr "  bundle %d: [%s] %s %s — -%d event(s) / -%d cycle(s): %s@." (i + 1)
    (str b "verdict") (str plan "rule") (str plan "fix") (num b "measured_events")
    (num b "measured_cycles") (str b "detail")

let query store_dir target_filter kind_filter phase_filter digest_filter fix_verdict_filter
    show_findings show_bundles =
  (match fix_verdict_filter with
  | Some ("proven" | "ineffective" | "harmful") | None -> ()
  | Some v -> usage_error "unknown fix verdict %s (proven | ineffective | harmful)" v);
  let ledger = open_ledger store_dir in
  let runs = Store.Ledger.load_all ledger in
  let contains ~needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
    needle = "" || at 0
  in
  let run_matches (r : Store.Record.t) =
    (match target_filter with
    | Some t -> String.equal t r.Store.Record.target
    | None -> true)
    && (match digest_filter with
       | Some d -> String.starts_with ~prefix:d r.Store.Record.config_digest
       | None -> true)
  in
  let finding_matches (f : Store.Record.finding) =
    (match kind_filter with
    | Some k -> contains ~needle:k f.Store.Record.f_kind
    | None -> true)
    && (match phase_filter with
       | Some p -> String.equal p f.Store.Record.f_phase
       | None -> true)
    &&
    (* a fix-verdict filter selects findings that carry a fix whose
       replay-backed verdict (the annotation "verdict — detail") matches *)
    match fix_verdict_filter with
    | None -> true
    | Some v -> (
        f.Store.Record.f_fix <> None
        &&
        match f.Store.Record.f_verdict with
        | Some s -> String.starts_with ~prefix:v s
        | None -> false)
  in
  let filtering_findings =
    kind_filter <> None || phase_filter <> None || fix_verdict_filter <> None
  in
  let shown = ref 0 in
  List.iter
    (fun (r : Store.Record.t) ->
      if run_matches r then begin
        let findings = List.filter finding_matches r.Store.Record.findings in
        let bundles = if show_bundles then run_bundles r else None in
        (* --bundles narrows to runs that ran the optimize phase *)
        if ((not filtering_findings) || findings <> []) && (not show_bundles || bundles <> None)
        then begin
          incr shown;
          Fmt.pr "%a@." Store.Record.pp r;
          if show_findings || filtering_findings then
            List.iteri
              (fun i (f : Store.Record.finding) ->
                Fmt.pr "  %d. %s [%s] %s: %s%s@." (i + 1)
                  (short f.Store.Record.f_id)
                  f.Store.Record.f_phase f.Store.Record.f_kind f.Store.Record.f_detail
                  (match f.Store.Record.f_verdict with
                  | Some v when fix_verdict_filter <> None -> " (" ^ v ^ ")"
                  | _ -> ""))
              findings;
          match bundles with
          | None -> ()
          | Some [] -> Fmt.pr "  (optimize phase ran, no verified bundles)@."
          | Some bs -> List.iteri pp_ledger_bundle bs
        end
      end)
    runs;
  if !shown = 0 then Fmt.pr "no matching runs (%d in ledger)@." (List.length runs);
  exit 0

let query_cmd =
  let doc =
    "List recorded runs and findings, filtered by target, finding kind \
     (substring), phase or configuration digest (prefix)."
  in
  let target_arg =
    Arg.(value & opt (some string) None & info [ "target" ] ~doc:"Only runs of this target.")
  in
  let kind_arg =
    Arg.(
      value & opt (some string) None
      & info [ "kind" ] ~doc:"Only findings whose kind contains this substring.")
  in
  let phase_arg =
    Arg.(
      value & opt (some string) None
      & info [ "phase" ]
          ~doc:
            "Only findings from this phase (fault_injection | trace_analysis \
             | static_analysis | abs_interp | lint).")
  in
  let digest_arg =
    Arg.(
      value & opt (some string) None
      & info [ "config-digest" ] ~doc:"Only runs whose configuration digest starts with this.")
  in
  let findings_arg =
    Arg.(value & flag & info [ "findings" ] ~doc:"List each run's findings too.")
  in
  let fix_verdict_arg =
    Arg.(
      value & opt (some string) None
      & info [ "fix-verdict" ] ~docv:"VERDICT"
          ~doc:
            "Only findings carrying a fix whose replay-backed verdict is \
             $(docv) (proven | ineffective | harmful). Implies --findings.")
  in
  let bundles_arg =
    Arg.(
      value & flag
      & info [ "bundles" ]
          ~doc:
            "List each run's verified optimizer bundles (runs without an \
             optimize phase are skipped).")
  in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(
      const query $ ledger_dir_arg $ target_arg $ kind_arg $ phase_arg $ digest_arg
      $ fix_verdict_arg $ findings_arg $ bundles_arg)

let explain store_dir jsonl run_sel finding_sel =
  let ledger = open_ledger store_dir in
  match Store.Ledger.load_run ledger run_sel with
  | Error e -> usage_error "%s" e
  | Ok record -> (
      match Store.Explain.find record finding_sel with
      | Error e -> usage_error "%s" e
      | Ok pair ->
          if jsonl then print_string (Store.Explain.chain_to_string record pair)
          else Fmt.pr "%a" Store.Explain.pp (record, pair);
          exit 0)

let explain_cmd =
  let doc =
    "Print the causal chain behind one finding of a recorded run: failure \
     point, trace window, witness, crash-vs-recovered image diff and \
     verdict."
  in
  let run_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"RUN" ~doc:"Run id (or unique prefix).")
  in
  let finding_arg =
    Arg.(
      required & pos 1 (some string) None
      & info [] ~docv:"FINDING"
          ~doc:"Finding id prefix, exact signature, or 1-based index in the run.")
  in
  let jsonl_arg =
    Arg.(value & flag & info [ "jsonl" ] ~doc:"Emit the chain as JSON Lines instead of text.")
  in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(const explain $ ledger_dir_arg $ jsonl_arg $ run_arg $ finding_arg)

let diff_runs store_dir json_out run_a run_b =
  let ledger = open_ledger store_dir in
  match (Store.Ledger.load_run ledger run_a, Store.Ledger.load_run ledger run_b) with
  | Error e, _ | _, Error e -> usage_error "%s" e
  | Ok a, Ok b ->
      let d = Store.Diff.compute a b in
      if json_out then print_endline (Telemetry.Json.to_string (Store.Diff.to_json d))
      else Fmt.pr "%a" Store.Diff.pp d;
      (* scriptable: new findings are the regression signal *)
      exit (if d.Store.Diff.new_findings = [] then 0 else 1)

let diff_cmd =
  let doc =
    "Compare two recorded runs by finding signature: new, fixed and \
     persisting findings. Exits 1 when run B has findings absent from run A."
  in
  let run_a_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"RUN_A" ~doc:"Baseline run id.")
  in
  let run_b_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"RUN_B" ~doc:"Candidate run id.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the diff as a mumak.store JSON record.")
  in
  Cmd.v (Cmd.info "diff" ~doc)
    Term.(const diff_runs $ ledger_dir_arg $ json_arg $ run_a_arg $ run_b_arg)

(* ------------------------------------------------------------------ *)
(* validate: schema checks over the files mumak and bench emit         *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let bench_schema_version = 2

(* BENCH_*.json envelope shared with bench/main.ml: schema "mumak.bench"
   version 2, experiment/target strings, the full Config, a list of result
   rows and — new in v2 — a "meta" stamp (git commit, OCaml version, host
   cores, smoke flag, wall/alloc totals) that the trend gate compares
   across recorded runs. *)
let validate_bench json =
  let open Telemetry.Json in
  let field k cast = Option.bind (member k json) cast in
  let str k = field k to_string_opt in
  match (str "schema", field "version" to_int_opt) with
  | Some "mumak.bench", Some 2 -> (
      match
        (str "experiment", str "target", field "config" to_assoc_opt,
         field "rows" to_list_opt)
      with
      | Some _, Some _, Some _, Some rows -> (
          match field "meta" to_assoc_opt with
          | None -> Error "bench file: missing object field \"meta\""
          | Some _ ->
              let meta = Option.get (member "meta" json) in
              let meta_field k cast = Option.bind (member k meta) cast in
              let missing =
                List.filter_map Fun.id
                  [
                    (if meta_field "git_commit" to_string_opt = None then
                       Some "git_commit" else None);
                    (if meta_field "ocaml_version" to_string_opt = None then
                       Some "ocaml_version" else None);
                    (if meta_field "host_cores" to_int_opt = None then
                       Some "host_cores" else None);
                    (if meta_field "wall_seconds" to_float_opt = None then
                       Some "wall_seconds" else None);
                    (if meta_field "allocated_bytes" to_float_opt = None then
                       Some "allocated_bytes" else None);
                  ]
              in
              if missing = [] then
                Ok (Printf.sprintf "mumak.bench v2, %d row(s)" (List.length rows))
              else
                Error
                  (Printf.sprintf "bench file: meta is missing %s"
                     (String.concat ", " missing)))
      | None, _, _, _ -> Error "bench file: missing string field \"experiment\""
      | _, None, _, _ -> Error "bench file: missing string field \"target\""
      | _, _, None, _ -> Error "bench file: missing object field \"config\""
      | _, _, _, None -> Error "bench file: missing list field \"rows\""
      )
  | Some "mumak.bench", Some v ->
      Error
        (Printf.sprintf "bench file: unknown version %d (current is %d)" v
           bench_schema_version)
  | _ -> Error "not a mumak.bench file"

let is_jsonl contents =
  (* JSONL: the first line is the self-identifying header record *)
  let first_line =
    match String.index_opt contents '\n' with
    | Some i -> String.sub contents 0 i
    | None -> contents
  in
  match Telemetry.Json.of_string first_line with
  | Ok j ->
      Option.bind (Telemetry.Json.member "schema" j) Telemetry.Json.to_string_opt
      = Some Telemetry.Jsonl.schema_name
  | Error _ -> false

let validate_one path =
  let contents = try Ok (read_file path) with Sys_error e -> Error e in
  Result.bind contents (fun contents ->
      let trimmed = String.trim contents in
      if trimmed = "" then Error "empty file"
      else if is_jsonl trimmed then
        Result.map
          (fun n -> Printf.sprintf "%s v%d, %d record(s)" Telemetry.Jsonl.schema_name
               Telemetry.Jsonl.schema_version n)
          (Telemetry.Jsonl.validate_string contents)
      else
        match Telemetry.Json.of_string trimmed with
        | Error e -> Error (Printf.sprintf "JSON parse error: %s" e)
        | Ok json -> (
            match Telemetry.Json.member "traceEvents" json with
            | Some _ ->
                Result.map
                  (fun n -> Printf.sprintf "chrome trace, %d event(s)" n)
                  (Telemetry.Chrome_trace.validate json)
            | None ->
                if
                  Option.bind (Telemetry.Json.member "schema" json)
                    Telemetry.Json.to_string_opt
                  = Some Store.Record.schema_name
                then Store.Schema.validate json
                else validate_bench json))

let validate files =
  let failed = ref false in
  List.iter
    (fun path ->
      match validate_one path with
      | Ok msg -> Fmt.pr "%s: OK (%s)@." path msg
      | Error msg ->
          failed := true;
          Fmt.epr "%s: INVALID: %s@." path msg)
    files;
  exit (if !failed then 2 else 0)

let validate_cmd =
  let doc =
    "Validate telemetry, benchmark and results-store output files (Chrome \
     trace JSON from --trace-out, JSON Lines from --metrics-out, \
     BENCH_*.json from the bench harness, run and diff records from the \
     mumak.store ledger) against their schemas. Exits 2 on any malformed \
     file."
  in
  let files_arg =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"FILE" ~doc:"File(s) to validate.")
  in
  Cmd.v (Cmd.info "validate" ~doc) Term.(const validate $ files_arg)

let () =
  let info = Cmd.info "mumak" ~doc:"Black-box bug detection for persistent memory" in
  match
    Cmd.eval ~catch:false
      (Cmd.group ~default:analyze_term info
         [
           analyze_cmd; optimize_cmd; list_cmd; validate_cmd; query_cmd; explain_cmd;
           diff_cmd;
         ])
  with
  | 0 -> exit 0
  | _ -> exit 2 (* cmdliner usage/parse errors all map to the error code *)
