(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (section 6) on the simulated substrate.

   Usage: main.exe [table1|fig3|fig4|table2|coverage|fig5|newbugs|table3|
                    ablation|scaling|micro|trend]...
   With no argument, every experiment runs in sequence. Workload sizes and
   timeouts are scaled down (seconds instead of hours); EXPERIMENTS.md maps
   each output to the corresponding paper claim. *)

let line = String.make 78 '='
let section title =
  Fmt.pr "@.%s@.== %s@.%s@." line title line

(* ------------------------------------------------------------------ *)
(* Machine-readable results: BENCH_<experiment>.json                   *)
(* ------------------------------------------------------------------ *)

(* MUMAK_BENCH_SMOKE=1 scales the instrumented experiments down (smaller
   workloads, fewer configurations) so CI can exercise the full emit +
   validate path in seconds. The flag is recorded in the output. *)
let smoke = Sys.getenv_opt "MUMAK_BENCH_SMOKE" <> None

(* Per-experiment wall/alloc totals for the envelope's meta stamp, reset by
   [bench_telemetry_begin]. *)
let bench_clock = ref (Unix.gettimeofday ())
let bench_alloc = ref (Gc.allocated_bytes ())

(* Start an instrumented experiment: turn the collector on and discard
   anything a previous experiment left buffered, so the dump written by
   [write_bench] covers exactly this experiment's runs. *)
let bench_telemetry_begin () =
  Telemetry.Collector.enable ();
  ignore (Telemetry.Collector.drain ());
  bench_clock := Unix.gettimeofday ();
  bench_alloc := Gc.allocated_bytes ()

let git_commit =
  lazy
    (try
       let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
       let line = try input_line ic with End_of_file -> "" in
       ignore (Unix.close_process_in ic);
       if String.trim line = "" then "unknown" else String.trim line
     with _ -> "unknown")

(* The v2 meta stamp: enough provenance to interpret an envelope long after
   the run — which commit, which compiler, how parallel the host was — plus
   the wall/alloc totals the `trend` gate compares across recorded runs. *)
let bench_meta () =
  let open Telemetry.Json in
  Assoc
    [
      ("git_commit", String (Lazy.force git_commit));
      ("ocaml_version", String Sys.ocaml_version);
      ("host_cores", Int (Domain.recommended_domain_count ()));
      ("smoke", Bool smoke);
      ("wall_seconds", Float (Unix.gettimeofday () -. !bench_clock));
      ("allocated_bytes", Float (Gc.allocated_bytes () -. !bench_alloc));
    ]

(* Envelope shared with `mumak validate`: schema "mumak.bench" version 2
   with the experiment name, target, full Config, per-configuration result
   rows, the telemetry counters/histograms of the experiment's runs, the
   report signature (so a regression in *what* was found, not just how
   fast, is visible from the artifact alone) and the meta stamp. When
   MUMAK_STORE names a results ledger the envelope is also appended to its
   bench history, which is what `main.exe trend` judges. *)
let write_bench ~experiment ~target ~config ~rows ~signature =
  let dump = Telemetry.Collector.drain () in
  let open Telemetry.Json in
  let json =
    Assoc
      [
        ("schema", String "mumak.bench");
        ("version", Int 2);
        ("experiment", String experiment);
        ("target", String target);
        ("smoke", Bool smoke);
        ("meta", bench_meta ());
        ("config", Mumak.Config.to_json config);
        ("rows", List rows);
        ( "counters",
          Assoc
            (List.map
               (fun (k, v) -> (k, Int v))
               dump.Telemetry.Collector.counters) );
        ( "histograms",
          Assoc
            (List.map
               (fun (k, h) -> (k, Telemetry.Histogram.to_json h))
               dump.Telemetry.Collector.histograms) );
        ("report_signature", List (List.map (fun s -> String s) signature));
      ]
  in
  let path = Printf.sprintf "BENCH_%s.json" experiment in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string json);
      output_char oc '\n');
  Fmt.pr "@.machine-readable results: %s@." path;
  match Sys.getenv_opt "MUMAK_STORE" with
  | Some dir when dir <> "" ->
      let ledger = Store.Ledger.open_ ~dir () in
      Store.Ledger.append_bench ledger json;
      Fmt.pr "appended envelope to %s@." (Store.Ledger.bench_path ledger)
  | _ -> ()

let phase_metrics (r : Mumak.Engine.result) =
  Telemetry.Json.Assoc
    [
      ("total", Mumak.Metrics.to_json r.Mumak.Engine.metrics);
      ("fault_injection", Mumak.Metrics.to_json r.Mumak.Engine.fi_metrics);
      ("trace_analysis", Mumak.Metrics.to_json r.Mumak.Engine.ta_metrics);
      ("static_analysis", Mumak.Metrics.to_json r.Mumak.Engine.sa_metrics);
    ]

(* ------------------------------------------------------------------ *)
(* Table 1: taxonomy coverage matrix                                   *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table 1: tool classification against the bug taxonomy";
  Fmt.pr "(Y = supported, Y* = with manual annotations, Y+ = conflated with durability)@.@.";
  Fmt.pr "%a" Mumak.Taxonomy.pp_table1 ()

(* ------------------------------------------------------------------ *)
(* Figure 3: unique execution paths vs workload size                   *)
(* ------------------------------------------------------------------ *)

let count_unique_paths target =
  let pi_tree = Mumak.Fp_tree.create () and st_tree = Mumak.Fp_tree.create () in
  let device = Pmem.Device.create ~size:target.Mumak.Target.pool_size () in
  let tracer = Pmtrace.Tracer.create ~collect:false device in
  let detect_pi =
    Mumak.Fault_injection.fp_listener ~granularity:Mumak.Config.Persistency_instruction
      ~on_fp:(fun c -> ignore (Mumak.Fp_tree.insert pi_tree c))
  in
  let detect_st =
    Mumak.Fault_injection.fp_listener ~granularity:Mumak.Config.Store_level
      ~on_fp:(fun c -> ignore (Mumak.Fp_tree.insert st_tree c))
  in
  Pmtrace.Tracer.add_listener tracer (fun e s ->
      detect_pi e s;
      detect_st e s);
  target.Mumak.Target.run ~device
    ~framer:(Pmtrace.Framer.of_callstack (Pmtrace.Tracer.stack tracer));
  Pmtrace.Tracer.detach tracer;
  (Mumak.Fp_tree.size pi_tree, Mumak.Fp_tree.size st_tree)

let fig3 () =
  section "Figure 3: PMDK data store coverage based on workload size";
  let sizes = [ 30; 100; 300; 1000; 3000 ] in
  let apps = [ "btree"; "rbtree"; "hashmap_atomic" ] in
  let results =
    List.map
      (fun name ->
        let m = Option.get (Pmapps.Registry.find name) in
        ( name,
          List.map
            (fun ops ->
              let workload = Workload.standard ~ops ~key_range:(max 20 (ops / 3)) ~seed:42L in
              let target = Targets.of_app m ~version:Pmalloc.Version.V1_6 ~workload () in
              count_unique_paths target)
            sizes ))
      apps
  in
  let print_table title pick =
    Fmt.pr "@.(%s) unique execution paths@." title;
    Fmt.pr "%-16s" "workload (ops)";
    List.iter (fun s -> Fmt.pr " %8d" s) sizes;
    Fmt.pr "@.";
    List.iter
      (fun (name, counts) ->
        Fmt.pr "%-16s" name;
        List.iter (fun c -> Fmt.pr " %8d" (pick c)) counts;
        Fmt.pr "@.")
      results
  in
  print_table "3a: persistency instructions" fst;
  print_table "3b: stores to PM" snd;
  Fmt.pr
    "@.expected shape: both grow with workload size; (3b) is several times (3a) -- the\n\
     reason Mumak injects at persistency instructions (section 6.1).@."

(* ------------------------------------------------------------------ *)
(* Figure 4 + Table 2: analysis time and resource usage                *)
(* ------------------------------------------------------------------ *)

type tool_row = {
  row_tool : string;
  row_target : string;
  seconds : float;
  infinite : bool;
  cpu_load : float;
  ram_ratio : float;
  pm_ratio : float;
  bugs_found : int;
}

let timeout_s = 4.0 (* the 12-hour-limit analogue *)
let fig4_ops = 400

let vanilla_cost target =
  let (), m =
    Mumak.Metrics.measure (fun () ->
        let device = Pmem.Device.create ~size:target.Mumak.Target.pool_size () in
        target.Mumak.Target.run ~device ~framer:Pmtrace.Framer.null)
  in
  m

(* the application's own working set: its pool plus whatever volatile heap
   a vanilla run grows; tool overheads are measured against this *)
let app_words target vanilla =
  (target.Mumak.Target.pool_size / 8) + vanilla.Mumak.Metrics.heap_growth_words

let run_mumak target =
  let vanilla = vanilla_cost target in
  let result = Mumak.Engine.analyze ~config:Mumak.Config.faithful target in
  let m = result.Mumak.Engine.metrics in
  let base = app_words target vanilla in
  {
    row_tool = "Mumak";
    row_target = target.Mumak.Target.name;
    seconds = m.Mumak.Metrics.wall_seconds;
    infinite = false;
    cpu_load = Mumak.Metrics.cpu_load m;
    ram_ratio =
      float_of_int (base + m.Mumak.Metrics.heap_growth_words) /. float_of_int base;
    pm_ratio = 1.0;
    bugs_found = List.length (Mumak.Report.bugs result.Mumak.Engine.report);
  }

let run_baseline (analyze : ?budget_s:float -> Mumak.Target.t -> Baselines.Tool_intf.result)
    target =
  let vanilla = vanilla_cost target in
  let r = analyze ~budget_s:timeout_s target in
  let m = r.Baselines.Tool_intf.metrics in
  let base = app_words target vanilla in
  {
    row_tool = r.Baselines.Tool_intf.tool;
    row_target = target.Mumak.Target.name;
    seconds = m.Mumak.Metrics.wall_seconds;
    infinite = r.Baselines.Tool_intf.timed_out;
    cpu_load = Mumak.Metrics.cpu_load m;
    ram_ratio =
      float_of_int
        (base + m.Mumak.Metrics.heap_growth_words + r.Baselines.Tool_intf.tracking_words)
      /. float_of_int base;
    pm_ratio = r.Baselines.Tool_intf.pm_overhead;
    bugs_found = List.length (Mumak.Report.bugs r.Baselines.Tool_intf.report);
  }

let kv_of (module A : Pmapps.Kv_intf.S) version workload =
  Baselines.Kv_target.make (module A) ~version ~workload ()

let print_rows rows =
  Fmt.pr "%-14s %-28s %10s %6s %8s %8s %6s@." "tool" "target" "time" "" "CPU" "RAM" "bugs";
  List.iter
    (fun r ->
      Fmt.pr "%-14s %-28s %10s %6s %8.2f %7.1fx %6d@." r.row_tool r.row_target
        (if r.infinite then "INF" else Printf.sprintf "%.2fs" r.seconds)
        (if r.infinite then "(cap)" else "")
        r.cpu_load r.ram_ratio r.bugs_found)
    rows

let fig4_rows = ref ([] : tool_row list)

let fig4 () =
  section
    (Printf.sprintf
       "Figure 4: analysis time of libpmemobj benchmarks (timeout %.0fs = the 12h cap)"
       timeout_s);
  let workload = Workload.standard ~ops:fig4_ops ~key_range:60 ~seed:42L in
  let rows = ref [] in
  let push r = rows := r :: !rows in
  (* --- Figure 4a: library version 1.6: Mumak vs Agamotto vs XFDetector --- *)
  Fmt.pr "@.(4a) pmalloc V1.6@.";
  let v = Pmalloc.Version.V1_6 in
  List.iter
    (fun (name, spt) ->
      let m = Option.get (Pmapps.Registry.find name) in
      let tx_mode = if spt then Targets.Spt else Targets.Grouped 64 in
      let target = Targets.of_app m ~version:v ~tx_mode ~workload () in
      push (run_mumak target);
      push
        (run_baseline
           (fun ?budget_s t ->
             ignore t;
             Baselines.Agamotto.analyze ?budget_s (kv_of m v workload))
           target);
      if spt then
        (* XFDetector's artifact only supports the SPT shape (section 6.1) *)
        push (run_baseline Baselines.Xfdetector.analyze target))
    [ ("btree", false); ("rbtree", false); ("hashmap_atomic", false);
      ("btree", true); ("rbtree", true); ("hashmap_atomic", true) ];
  (* --- Figure 4b: library version 1.8: Mumak vs PMDebugger vs Witcher --- *)
  Fmt.pr "@.(4b) pmalloc V1.8 (hashmap_atomic excluded: broken on 1.8)@.";
  let v = Pmalloc.Version.V1_8 in
  List.iter
    (fun (name, spt) ->
      let m = Option.get (Pmapps.Registry.find name) in
      let tx_mode = if spt then Targets.Spt else Targets.Grouped 64 in
      let target = Targets.of_app m ~version:v ~tx_mode ~workload () in
      push (run_mumak target);
      push (run_baseline Baselines.Pmdebugger.analyze target);
      if spt then
        (* Witcher requires the single-put-per-transaction driver shape *)
        push
          (run_baseline
             (fun ?budget_s t ->
               ignore t;
               Baselines.Witcher.analyze ?budget_s (kv_of m v workload))
             target))
    [ ("btree", false); ("rbtree", false); ("btree", true); ("rbtree", true) ];
  let all = List.rev !rows in
  fig4_rows := all;
  print_rows all;
  (* headline ratios *)
  let mumak_max =
    List.fold_left (fun acc r -> if r.row_tool = "Mumak" then max acc r.seconds else acc) 0.
      all
  in
  let others_best_finished =
    List.filter_map
      (fun r -> if r.row_tool <> "Mumak" && not r.infinite then Some r.seconds else None)
      all
  in
  let timeouts = List.length (List.filter (fun r -> r.infinite) all) in
  Fmt.pr
    "@.Mumak worst case: %.2fs; %d baseline run(s) hit the cap (INF); fastest finishing \
     baseline: %s@."
    mumak_max timeouts
    (match others_best_finished with
    | [] -> "none"
    | l -> Printf.sprintf "%.2fs" (List.fold_left min infinity l))

let table2 () =
  section "Table 2: average CPU load, peak RAM and PM overheads (from the Figure 4 runs)";
  if !fig4_rows = [] then fig4 ();
  Fmt.pr "%-14s %-28s %8s %8s %6s@." "tool" "target" "CPU" "RAM" "PM";
  List.iter
    (fun r ->
      Fmt.pr "%-14s %-28s %8.2f %7.1fx %6s@." r.row_tool r.row_target r.cpu_load
        r.ram_ratio
        (if r.pm_ratio = 0. then "-" else Printf.sprintf "%.1fx" r.pm_ratio))
    !fig4_rows;
  Fmt.pr
    "@.expected shape: Witcher's invariant tables dominate RAM; PMDebugger's bookkeeping \
     is next; Mumak needs the least; only XFDetector keeps metadata in PM (~1.9x).@."

(* ------------------------------------------------------------------ *)
(* Section 6.2: coverage against the seeded bug list                   *)
(* ------------------------------------------------------------------ *)

let coverage_target_for (bug : Bugreg.t) =
  let version name =
    if String.equal name "hashmap_atomic" then Pmalloc.Version.V1_6
    else Pmalloc.Version.V1_12
  in
  let wl = Workload.standard ~ops:250 ~key_range:80 ~seed:13L in
  match bug.Bugreg.component with
  | "pmalloc" ->
      (* the library bugs need large grouped transactions to fire *)
      Targets.of_app (module Pmapps.Btree) ~version:Pmalloc.Version.V1_12
        ~tx_mode:(Targets.Grouped 64) ~workload:wl ()
  | "montage" -> Targets.of_montage ~variant:`Buffered ~workload:wl ()
  | app ->
      Targets.of_app
        (Option.get (Pmapps.Registry.find app))
        ~version:(version app) ~workload:wl ()

let kind_class (k : Mumak.Report.kind) : Bugreg.taxonomy option =
  match k with
  | Mumak.Report.Unrecoverable_state | Mumak.Report.Recovery_crash -> None
  | Mumak.Report.Durability_bug | Mumak.Report.Dirty_overwrite -> Some Bugreg.Durability
  | Mumak.Report.Redundant_flush -> Some Bugreg.Redundant_flush
  | Mumak.Report.Redundant_fence -> Some Bugreg.Redundant_fence
  | Mumak.Report.Transient_data_warning -> Some Bugreg.Transient_data
  | Mumak.Report.Missing_flush_warning -> Some Bugreg.Durability
  | Mumak.Report.Multi_store_flush_warning | Mumak.Report.Unordered_flushes_warning
  | Mumak.Report.Ordering_violation | Mumak.Report.Atomicity_violation
  | Mumak.Report.Missing_fence_warning -> None

let count_kind report taxonomy =
  List.length
    (List.filter
       (fun f -> kind_class f.Mumak.Report.kind = Some taxonomy)
       (Mumak.Report.findings report))

let detected_by_mumak (bug : Bugreg.t) =
  let target = coverage_target_for bug in
  let analyze () = Mumak.Engine.analyze target in
  if Bugreg.is_correctness bug.Bugreg.taxonomy then begin
    (* the clean suite reports no correctness bugs, so any correctness
       finding is attributable to the seeded bug *)
    let result = Bugreg.with_enabled [ bug.Bugreg.id ] analyze in
    Mumak.Report.correctness_bugs result.Mumak.Engine.report <> []
  end
  else begin
    (* performance classes exist benignly in released code (the paper's 101
       performance bugs); score by the delta against the clean baseline *)
    let baseline = Bugreg.with_enabled [] analyze in
    let result = Bugreg.with_enabled [ bug.Bugreg.id ] analyze in
    count_kind result.Mumak.Engine.report bug.Bugreg.taxonomy
    > count_kind baseline.Mumak.Engine.report bug.Bugreg.taxonomy
  end

let coverage () =
  section "Section 6.2: Mumak coverage of the seeded bug list (the Witcher-list analogue)";
  let bugs = Pmapps.Registry.all_bugs @ Pmalloc.Bugs.all @ Montage.Mt_alloc.bugs in
  (* the Level Hashing story: stock recovery first, enhanced afterwards *)
  Pmapps.Level_hash.use_enhanced_recovery := false;
  let score enhanced =
    Pmapps.Level_hash.use_enhanced_recovery := enhanced;
    List.map (fun b -> (b, detected_by_mumak b)) bugs
  in
  let stock = score false in
  let enhanced = score true in
  Pmapps.Level_hash.use_enhanced_recovery := false;
  Fmt.pr "%-30s %-14s %-12s %8s %9s@." "bug id" "component" "class" "stock" "enhanced";
  List.iter2
    (fun (b, d0) ((_, d1) : Bugreg.t * bool) ->
      Fmt.pr "%-30s %-14s %-12s %8s %9s@." b.Bugreg.id b.Bugreg.component
        (Bugreg.taxonomy_to_string b.Bugreg.taxonomy)
        (if d0 then "Y" else "-")
        (if d1 then "Y" else "-"))
    stock enhanced;
  let summarize label scored =
    let det = List.length (List.filter snd scored) and tot = List.length scored in
    let c, ct =
      List.fold_left
        (fun (c, ct) ((b : Bugreg.t), d) ->
          if Bugreg.is_correctness b.Bugreg.taxonomy then ((if d then c + 1 else c), ct + 1)
          else (c, ct))
        (0, 0) scored
    in
    Fmt.pr "%s: %d/%d bugs detected (%.0f%%); correctness: %d/%d; performance: %d/%d@."
      label det tot
      (100. *. float_of_int det /. float_of_int tot)
      c ct (det - c) (tot - ct)
  in
  summarize "stock recovery   " stock;
  summarize "enhanced recovery" enhanced;
  Fmt.pr
    "@.expected shape: ~90%% with the enhanced (20-line) Level Hashing recovery, \
     noticeably less with the stock one; the misses are ordering bugs whose crash \
     states do not respect program order (Mumak emits warnings for those).@."

(* ------------------------------------------------------------------ *)
(* Figure 5: scalability -- analysis time vs codebase size             *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  section "Figure 5: Mumak analysis time relative to code size";
  let wl = Workload.standard ~ops:120 ~key_range:40 ~seed:21L in
  let targets =
    [
      Targets.of_pmemkv ~engine:Kvstores.Pmemkv.Cmap ~workload:wl ();
      Targets.of_pmemkv ~engine:Kvstores.Pmemkv.Stree ~workload:wl ();
      Targets.of_montage ~variant:`Buffered ~workload:wl ();
      Targets.of_montage ~variant:`Lockfree ~workload:wl ();
      Targets.of_redis ~workload:wl ();
      Targets.of_rocksdb ~workload:wl ();
    ]
  in
  Fmt.pr "%-24s %14s %12s %10s@." "target" "code (k lines)" "time" "fail.points";
  let points =
    List.map
      (fun target ->
        let result = Mumak.Engine.analyze ~config:Mumak.Config.faithful target in
        let t = result.Mumak.Engine.metrics.Mumak.Metrics.wall_seconds in
        Fmt.pr "%-24s %14.1f %11.2fs %10d@." target.Mumak.Target.name
          (float_of_int target.Mumak.Target.loc /. 1000.)
          t result.Mumak.Engine.failure_points;
        (float_of_int target.Mumak.Target.loc, t))
      targets
  in
  (* Pearson correlation between code size and analysis time *)
  let n = float_of_int (List.length points) in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0. points in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0. points in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. points in
  let syy = List.fold_left (fun a (_, y) -> a +. (y *. y)) 0. points in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. points in
  let denom = sqrt (((n *. sxx) -. (sx *. sx)) *. ((n *. syy) -. (sy *. sy))) in
  let r = if denom = 0. then 0. else ((n *. sxy) -. (sx *. sy)) /. denom in
  Fmt.pr
    "@.Pearson correlation(code size, analysis time) = %.2f -- analysis time is driven \
     by the workload's unique paths, not by codebase size (the paper's claim).@."
    r

(* ------------------------------------------------------------------ *)
(* Section 6.4: the new bugs                                           *)
(* ------------------------------------------------------------------ *)

let newbugs () =
  section "Section 6.4: new bugs (seeded reproductions of the published ones)";
  let wl = Workload.standard ~ops:200 ~key_range:60 ~seed:7L in
  let cases =
    [
      ( "Montage allocator recoverability (urcs-sync/Montage#36)",
        "montage_alloc_head_unpersisted",
        Targets.of_montage ~variant:`Buffered ~workload:wl () );
      ( "Montage destructor window (urcs-sync/Montage 3384e50)",
        "montage_dtor_window",
        Targets.of_montage ~variant:`Buffered ~workload:wl () );
      ( "PMDK 1.12 large-tx commit (pmem/pmdk#5461, high priority)",
        "pmdk112_tx_overflow_commit",
        Targets.of_app (module Pmapps.Btree) ~version:Pmalloc.Version.V1_12
          ~tx_mode:(Targets.Grouped 64) ~workload:wl () );
      ( "PMDK libart count/children inconsistency (pmem/pmdk#5512)",
        "art_count_before_child",
        Targets.of_app (module Pmapps.Art) ~version:Pmalloc.Version.V1_12
          ~workload:(Workload.standard ~ops:200 ~key_range:600 ~seed:7L) () );
    ]
  in
  let found =
    List.map
      (fun (label, bug, target) ->
        let result = Bugreg.with_enabled [ bug ] (fun () -> Mumak.Engine.analyze target) in
        let hits = Mumak.Report.correctness_bugs result.Mumak.Engine.report in
        Fmt.pr "%-58s %s@." label (if hits = [] then "MISSED" else "FOUND");
        (match hits with f :: _ -> Fmt.pr "    %a@." Mumak.Report.pp_finding f | [] -> ());
        hits <> [])
      cases
  in
  Fmt.pr "@.%d/4 published bugs reproduced and detected.@."
    (List.length (List.filter Fun.id found))

(* ------------------------------------------------------------------ *)
(* Table 3: ergonomics                                                 *)
(* ------------------------------------------------------------------ *)

let table3 () =
  section "Table 3: qualitative output and ease-of-use comparison";
  let rows =
    [
      ("XFDetector", "No", "No", "Yes", "No", "No");
      ("PMDebugger", "Yes", "No", "Yes", "No", "Yes*");
      ("Agamotto", "Yes", "Yes", "No (SE)", "Yes", "No");
      ("Witcher", "No", "No", "No", "No", "No");
      ("Mumak", "Yes", "Yes", "Yes", "Yes", "Yes");
    ]
  in
  Fmt.pr "%-12s %-10s %-8s %-12s %-14s %-14s@." "tool" "bug path" "unique" "any workload"
    "no code edits" "no build edits";
  List.iter
    (fun (t, a, b, c, d, e) -> Fmt.pr "%-12s %-10s %-8s %-12s %-14s %-14s@." t a b c d e)
    rows;
  Fmt.pr "* PMDebugger rides on pmemcheck annotations shipped inside the PM library.@."

(* ------------------------------------------------------------------ *)
(* Ablations of the design decisions (DESIGN.md)                       *)
(* ------------------------------------------------------------------ *)

let ablation () =
  section "Ablation: Mumak design choices";
  let wl = Workload.standard ~ops:150 ~key_range:60 ~seed:42L in
  let target =
    Targets.of_app (module Pmapps.Btree) ~version:Pmalloc.Version.V1_12 ~workload:wl ()
  in
  let run config =
    let r = Mumak.Engine.analyze ~config target in
    ( r.Mumak.Engine.failure_points,
      r.Mumak.Engine.executions,
      r.Mumak.Engine.metrics.Mumak.Metrics.wall_seconds,
      List.length (Mumak.Report.correctness_bugs r.Mumak.Engine.report) )
  in
  Fmt.pr "%-46s %8s %6s %9s %6s@." "configuration" "fail.pts" "execs" "time" "bugs";
  let show label config =
    let fp, ex, t, bugs = run config in
    Fmt.pr "%-46s %8d %6d %8.2fs %6d@." label fp ex t bugs
  in
  show "persistency-instruction FPs, snapshot" Mumak.Config.default;
  show "persistency-instruction FPs, re-execute" Mumak.Config.faithful;
  show "store-level FPs, snapshot (XFDetector-like)"
    { Mumak.Config.default with Mumak.Config.granularity = Mumak.Config.Store_level };
  show "store-level FPs, re-execute"
    { Mumak.Config.faithful with Mumak.Config.granularity = Mumak.Config.Store_level };
  (* eADR ablation: with the persistence domain extended to the caches, the
     durability patterns are disabled but crash consistency is unchanged *)
  let eadr = { Mumak.Config.default with Mumak.Config.eadr = true } in
  let durability_count config =
    Bugreg.with_enabled [ "hm_atomic_count_never_flushed" ] (fun () ->
        let t =
          Targets.of_app (module Pmapps.Hashmap_atomic) ~version:Pmalloc.Version.V1_6
            ~workload:wl ()
        in
        let r = Mumak.Engine.analyze ~config t in
        List.length
          (List.filter
             (fun f -> f.Mumak.Report.kind = Mumak.Report.Durability_bug)
             (Mumak.Report.findings r.Mumak.Engine.report)))
  in
  Fmt.pr
    "@.eADR ablation (hm_atomic with the never-flushed-counter bug): ADR reports %d      durability finding(s); eADR reports %d (unflushed stores are durable there,      section 4.3).@."
    (durability_count Mumak.Config.default)
    (durability_count eadr);
  Fmt.pr
    "@.expected shape: store-level granularity multiplies failure points and, with \
     re-execution, analysis time -- the section 4.1 scalability argument.@."

(* ------------------------------------------------------------------ *)
(* Scaling: parallel fault injection over worker domains               *)
(* ------------------------------------------------------------------ *)

let scaling () =
  section "Scaling: parallel fault injection (injections/sec vs Config.jobs)";
  bench_telemetry_begin ();
  let ops = if smoke then 100 else 250 in
  let jobs_list = if smoke then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  let wl = Workload.standard ~ops ~key_range:60 ~seed:42L in
  let target =
    Targets.of_app (module Pmapps.Btree) ~version:Pmalloc.Version.V1_12 ~workload:wl ()
  in
  Bugreg.with_enabled [ "btree_insert_no_tx" ] (fun () ->
      Fmt.pr "target: %s + seeded atomicity bug; host cores: %d@."
        target.Mumak.Target.name
        (Domain.recommended_domain_count ());
      Fmt.pr "%6s %10s %8s %8s %10s %9s %6s@." "jobs" "inject" "f.points" "execs"
        "inj/sec" "speedup" "bugs";
      let base = ref 0. in
      let rows = ref [] and signature = ref [] in
      List.iter
        (fun jobs ->
          let config =
            { Mumak.Config.faithful with Mumak.Config.jobs; resolve_stacks = false }
          in
          let r = Mumak.Engine.analyze ~config target in
          let t = r.Mumak.Engine.fi_metrics.Mumak.Metrics.wall_seconds in
          if jobs = 1 then begin
            base := t;
            signature := Mumak.Report.signature r.Mumak.Engine.report
          end;
          let inj_per_sec =
            if t > 0. then float_of_int r.Mumak.Engine.injections /. t else 0.
          in
          let speedup = if t > 0. then !base /. t else 1. in
          let bugs = List.length (Mumak.Report.bugs r.Mumak.Engine.report) in
          Fmt.pr "%6d %9.2fs %8d %8d %10.1f %8.2fx %6d@." jobs t
            r.Mumak.Engine.failure_points r.Mumak.Engine.executions inj_per_sec
            speedup bugs;
          rows :=
            Telemetry.Json.Assoc
              [
                ("jobs", Telemetry.Json.Int jobs);
                ("fi_wall_seconds", Telemetry.Json.Float t);
                ("failure_points", Telemetry.Json.Int r.Mumak.Engine.failure_points);
                ("injections", Telemetry.Json.Int r.Mumak.Engine.injections);
                ("executions", Telemetry.Json.Int r.Mumak.Engine.executions);
                ("injections_per_sec", Telemetry.Json.Float inj_per_sec);
                ("speedup", Telemetry.Json.Float speedup);
                ("bugs", Telemetry.Json.Int bugs);
                ( "signature_matches_sequential",
                  Telemetry.Json.Bool
                    (Mumak.Report.signature r.Mumak.Engine.report = !signature) );
                ("metrics", phase_metrics r);
              ]
            :: !rows)
        jobs_list;
      write_bench ~experiment:"scaling" ~target:target.Mumak.Target.name
        ~config:{ Mumak.Config.faithful with Mumak.Config.resolve_stacks = false }
        ~rows:(List.rev !rows) ~signature:!signature;
      Fmt.pr
        "@.expected shape: injections/sec scales with jobs up to the host's core count \
         (every injection is an independent re-execution -- embarrassingly parallel; \
         >=2x at jobs=4 on a 4-core host), while failure points, executions and the \
         bug set are identical at every worker count (the deterministic-merge / \
         differential-parity guarantee enforced by test_parallel.ml).@.")

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  section "Micro-benchmarks (Bechamel): substrate operation costs";
  let open Bechamel in
  let dev = Pmem.Device.create ~size:(1 lsl 20) () in
  let addr = ref 0 in
  let store_flush_fence =
    Test.make ~name:"device store+clwb+sfence"
      (Staged.stage (fun () ->
           addr := (!addr + 64) land 0xFFFF;
           Pmem.Device.store_i64 dev ~addr:!addr 42L;
           Pmem.Device.clwb dev ~addr:!addr;
           Pmem.Device.sfence dev))
  in
  let ta = Mumak.Trace_analysis.create Mumak.Config.default in
  let seq = ref 0 in
  let ta_feed =
    Test.make ~name:"trace-analysis feed (store+flush+fence)"
      (Staged.stage (fun () ->
           seq := !seq + 3;
           Mumak.Trace_analysis.feed ta
             { Pmtrace.Event.seq = !seq; op = Pmem.Op.Store { addr = 128; size = 8; nt = false };
               stack = None };
           Mumak.Trace_analysis.feed ta
             { Pmtrace.Event.seq = !seq + 1;
               op = Pmem.Op.Flush { kind = Pmem.Op.Clwb; line = 2; dirty = true; volatile = false };
               stack = None };
           Mumak.Trace_analysis.feed ta
             { Pmtrace.Event.seq = !seq + 2;
               op = Pmem.Op.Fence { kind = Pmem.Op.Sfence; pending_flushes = 1; pending_nt = 0 };
               stack = None }))
  in
  let tree = Mumak.Fp_tree.create () in
  List.iter
    (fun i ->
      ignore
        (Mumak.Fp_tree.insert tree
           { Pmtrace.Callstack.path = [ "a"; "b"; string_of_int (i mod 40) ]; op_index = i }))
    (List.init 400 Fun.id);
  let probe = { Pmtrace.Callstack.path = [ "a"; "b"; "7" ]; op_index = 7 } in
  let fp_find =
    Test.make ~name:"failure-point tree find (400 points)"
      (Staged.stage (fun () -> ignore (Mumak.Fp_tree.find tree probe)))
  in
  let crash_image =
    Test.make ~name:"crash image (1 MiB pool)"
      (Staged.stage (fun () ->
           ignore (Pmem.Device.crash dev ~policy:Pmem.Device.Program_prefix)))
  in
  let tests =
    Test.make_grouped ~name:"substrate" [ store_flush_fence; ta_feed; fp_find; crash_image ]
  in
  let benchmark () =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
    let raw = Benchmark.all cfg instances tests in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  let results = benchmark () in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Fmt.pr "%-48s %10.1f ns/run@." name est
      | _ -> Fmt.pr "%-48s (no estimate)@." name)
    results

(* ------------------------------------------------------------------ *)

(* Time-to-first-bug of the invariant-guided injection order vs the
   discovery (ordinal) order, over the seeded-bug matrix. Both runs use the
   re-execute strategy, so every failure point is eventually injected and
   the bug sets are identical; only the schedule differs. The hard claim —
   asserted again by the differential test — is that prioritization is
   never worse: equal when the static evidence is silent, earlier when a
   hot window covers the buggy failure point. *)
let prioritized () =
  section
    "Invariant-guided failure-point prioritization: injections until the first \
     true-positive fault";
  bench_telemetry_begin ();
  let bugs = Pmapps.Registry.all_bugs @ Pmalloc.Bugs.all @ Montage.Mt_alloc.bugs in
  let bugs = if smoke then List.filteri (fun i _ -> i < 4) bugs else bugs in
  let show = function Some n -> string_of_int n | None -> "-" in
  Fmt.pr "%-30s %-14s %-12s %9s %12s@." "bug id" "component" "class" "baseline"
    "prioritized";
  let worse = ref [] in
  let rows = ref [] and signature = ref [] in
  List.iter
    (fun (b : Bugreg.t) ->
      let target = coverage_target_for b in
      let analyze config =
        Bugreg.with_enabled [ b.Bugreg.id ] (fun () ->
            Mumak.Engine.analyze ~config target)
      in
      let base_r = analyze Mumak.Config.faithful in
      let pri_r = analyze Mumak.Config.static_analysis in
      let base = base_r.Mumak.Engine.first_bug_injection in
      let pri = pri_r.Mumak.Engine.first_bug_injection in
      signature := Mumak.Report.signature pri_r.Mumak.Engine.report;
      (match (base, pri) with
      | Some bn, Some pn when pn > bn -> worse := b.Bugreg.id :: !worse
      | Some _, None -> worse := b.Bugreg.id :: !worse
      | _ -> ());
      let opt = function
        | Some n -> Telemetry.Json.Int n
        | None -> Telemetry.Json.Null
      in
      rows :=
        Telemetry.Json.Assoc
          [
            ("bug_id", Telemetry.Json.String b.Bugreg.id);
            ("component", Telemetry.Json.String b.Bugreg.component);
            ( "class",
              Telemetry.Json.String (Bugreg.taxonomy_to_string b.Bugreg.taxonomy) );
            ("baseline_first_bug", opt base);
            ("prioritized_first_bug", opt pri);
            ("metrics", phase_metrics pri_r);
          ]
        :: !rows;
      Fmt.pr "%-30s %-14s %-12s %9s %12s@." b.Bugreg.id b.Bugreg.component
        (Bugreg.taxonomy_to_string b.Bugreg.taxonomy)
        (show base) (show pri))
    bugs;
  write_bench ~experiment:"prioritized" ~target:"seeded-bug-matrix"
    ~config:Mumak.Config.static_analysis ~rows:(List.rev !rows)
    ~signature:!signature;
  (match !worse with
  | [] ->
      Fmt.pr
        "@.prioritized order is never worse than discovery order on this matrix@."
  | ids ->
      Fmt.pr "@.REGRESSION: prioritization reached the bug later for: %a@."
        Fmt.(list ~sep:comma string)
        (List.rev ids))

(* Lint + verified fixes: the planted performance-bug matrix analyzed under
   Config.linting. Per target: redundancy counts and estimated savings from
   the lint pass, the fix-verdict tally from the verifier, and the
   replay-vs-reexecute wall time that justifies verifying fixes on replayed
   traces instead of re-running the target. *)
let lint_bench () =
  section "Lint + verified fixes: redundancies, savings, replay vs re-execution";
  bench_telemetry_begin ();
  let ops = if smoke then 150 else 400 in
  let key_range = if smoke then 60 else 200 in
  let wl = Workload.standard ~ops ~key_range ~seed:42L in
  let planted =
    [
      ("btree", "btree_redundant_persist");
      ("hashmap_atomic", "hm_atomic_redundant_fence");
      ("fast_fair", "ff_redundant_fence");
      ("hashmap_tx", "hm_tx_redundant_fence");
      ("level_hash", "level_hash_redundant_flush");
      ("level_hash", "level_hash_redundant_fence");
      ("rbtree", "rbtree_redundant_fence");
      ("wort", "wort_redundant_flush");
    ]
  in
  let planted = if smoke then List.filteri (fun i _ -> i < 3) planted else planted in
  let target_of app =
    let version =
      if String.equal app "hashmap_atomic" then Pmalloc.Version.V1_6
      else Pmalloc.Version.V1_12
    in
    Targets.of_app (Option.get (Pmapps.Registry.find app)) ~version ~workload:wl ()
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let x = f () in
    (x, Unix.gettimeofday () -. t0)
  in
  Fmt.pr "%-16s %-28s %7s %7s %7s %9s %24s@." "target" "seeded bug" "r.flsh" "r.fnc"
    "spots" "ev.saved" "verdicts (p/i/h, replays)";
  let rows = ref [] and signature = ref [] in
  let case app bug =
    let target = target_of app in
    let r =
      Bugreg.with_enabled (Option.to_list bug) (fun () ->
          Mumak.Engine.analyze ~config:Mumak.Config.linting target)
    in
    let l = Option.get r.Mumak.Engine.lint in
    let v = Option.get r.Mumak.Engine.fix_verdicts in
    (* replay-vs-reexecute: recording IS a traced live execution; replaying
       the recorded trace gives the verifier the same events without one *)
    let recording, t_record =
      time (fun () ->
          Pmtrace.Replay.record ~pool_size:target.Mumak.Target.pool_size
            (fun ~device ~framer -> target.Mumak.Target.run ~device ~framer))
    in
    let _, t_replay = time (fun () -> Pmtrace.Replay.replay recording) in
    signature := Mumak.Report.signature r.Mumak.Engine.report;
    Fmt.pr "%-16s %-28s %7d %7d %7d %9d %11d/%d/%d, %7d@." app
      (Option.value ~default:"(clean)" bug)
      l.Analysis.Lint.redundant_flushes l.Analysis.Lint.redundant_fences
      l.Analysis.Lint.missing_flush_spots l.Analysis.Lint.events_saved
      v.Analysis.Verify_fix.proven v.Analysis.Verify_fix.ineffective
      v.Analysis.Verify_fix.harmful v.Analysis.Verify_fix.replays;
    rows :=
      Telemetry.Json.Assoc
        [
          ("target", Telemetry.Json.String app);
          ( "seeded_bug",
            match bug with
            | Some b -> Telemetry.Json.String b
            | None -> Telemetry.Json.Null );
          ("events", Telemetry.Json.Int l.Analysis.Lint.events);
          ("epochs", Telemetry.Json.Int l.Analysis.Lint.epochs);
          ("redundant_flushes", Telemetry.Json.Int l.Analysis.Lint.redundant_flushes);
          ("redundant_fences", Telemetry.Json.Int l.Analysis.Lint.redundant_fences);
          ("missing_flush_spots", Telemetry.Json.Int l.Analysis.Lint.missing_flush_spots);
          ("finding_sites", Telemetry.Json.Int (List.length l.Analysis.Lint.findings));
          ("cycles_saved", Telemetry.Json.Int l.Analysis.Lint.cycles_saved);
          ("events_saved", Telemetry.Json.Int l.Analysis.Lint.events_saved);
          ("fixes_proven", Telemetry.Json.Int v.Analysis.Verify_fix.proven);
          ("fixes_ineffective", Telemetry.Json.Int v.Analysis.Verify_fix.ineffective);
          ("fixes_harmful", Telemetry.Json.Int v.Analysis.Verify_fix.harmful);
          ("verification_replays", Telemetry.Json.Int v.Analysis.Verify_fix.replays);
          ("reexecute_wall_seconds", Telemetry.Json.Float t_record);
          ("replay_wall_seconds", Telemetry.Json.Float t_replay);
          ( "replay_speedup",
            Telemetry.Json.Float (if t_replay > 0. then t_record /. t_replay else 0.) );
          ("metrics", phase_metrics r);
        ]
      :: !rows
  in
  (* every app once clean (the false-positive / no-harm baseline)... *)
  List.iter
    (fun app -> case app None)
    (List.sort_uniq compare (List.map fst planted));
  (* ...then once per planted redundancy *)
  List.iter (fun (app, bug) -> case app (Some bug)) planted;
  write_bench ~experiment:"lint" ~target:"planted-redundancy-matrix"
    ~config:Mumak.Config.linting ~rows:(List.rev !rows) ~signature:!signature;
  Fmt.pr
    "@.expected shape: every seeded row's redundancy counter exceeds its clean row's \
     (100%% detection of the planted redundancies); no clean row has a harmful fix; \
     replaying a recorded trace is faster than re-executing the target under \
     instrumentation -- the case for verifying fixes by trace rewrite.@."

(* Absint prune: clean-target skip rates plus the seeded soundness
   differential. Per clean target: failure points, nominated/confirmed/
   rejected/skipped counts and the pruned-vs-unpruned injection and wall
   time deltas. Then the seeded-bug matrix (a representative subset in
   smoke mode): the pruned report signature must equal the unpruned one on
   every row — a mismatch is a soundness regression and is printed as
   such. *)
let absint_bench () =
  section "Absint prune: proven-safe skip rates and soundness differential";
  bench_telemetry_begin ();
  let ops = if smoke then 60 else 200 in
  let key_range = if smoke then 25 else 80 in
  let wl = Workload.standard ~ops ~key_range ~seed:42L in
  let version_for app =
    if String.equal app "hashmap_atomic" then Pmalloc.Version.V1_6
    else Pmalloc.Version.V1_12
  in
  let target_of component () =
    match component with
    | "pmalloc" ->
        Targets.of_app
          (Option.get (Pmapps.Registry.find "btree"))
          ~tx_mode:(Targets.Grouped 64)
          ~workload:(Workload.standard ~ops:(max ops 120) ~key_range ~seed:42L)
          ()
    | "montage" -> Targets.of_montage ~variant:`Buffered ~workload:wl ()
    | app ->
        Targets.of_app
          (Option.get (Pmapps.Registry.find app))
          ~version:(version_for app) ~workload:wl ()
  in
  (* the unpruned baseline keeps the abstract interpreter on — its findings
     are part of the report — and only turns the skipping off *)
  let unpruned =
    { Mumak.Config.default with strategy = Mumak.Config.Reexecute; absint = true }
  in
  let pruned = { unpruned with Mumak.Config.prune = true } in
  let time f =
    (* collect the previous measurement's garbage before timing this one
       (on OCaml 5.1 this cannot shrink the major heap — see the warmup
       runs below, which equalize heap state instead) *)
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    let x = f () in
    (x, Unix.gettimeofday () -. t0)
  in
  let plan_of (r : Mumak.Engine.result) =
    match r.Mumak.Engine.absint with
    | Some { Mumak.Engine.prune = Some plan; _ } -> plan
    | _ -> failwith "pruned run carries no prune plan"
  in
  let rows = ref [] and signature = ref [] in
  (* --- clean targets: how much injection work does the proof retire? --- *)
  let clean = [ "wort"; "btree"; "level_hash"; "cceh"; "art" ] in
  let clean = if smoke then [ "wort"; "btree" ] else clean in
  Fmt.pr "%-12s %6s %6s %6s %6s %6s %7s %9s %9s@." "target" "points" "proven"
    "confd" "rejd" "skip" "skip%" "t.full(s)" "t.prune(s)";
  let best_fraction = ref 0. in
  List.iter
    (fun app ->
      (* Untimed warmup. The abstract-interpretation phase on the larger
         targets allocates gigabytes with over a GiB live at peak; on
         OCaml 5.1 the major heap never shrinks back, so whichever run
         comes right after pays extra sweep work for the ballooned heap
         (up to 2x CPU for identical allocation, measured on level_hash).
         A throwaway run per target puts both timed runs behind the same
         balloon — and absorbs the one left by the previous target. *)
      ignore (Mumak.Engine.analyze ~config:unpruned (target_of app ()));
      let base, t_full =
        time (fun () -> Mumak.Engine.analyze ~config:unpruned (target_of app ()))
      in
      (* Keep only what the comparison needs from the baseline result and
         let the rest die before the pruned run is timed: the absint
         result retains the merged CFG and the whole fixpoint state map,
         and holding that live across the pruned measurement charges it
         for re-marking ~a GiB on every major cycle (measured +7s on
         level_hash — more than the run itself). *)
      let base_signature = Mumak.Report.signature base.Mumak.Engine.report in
      let base_injections = base.Mumak.Engine.injections in
      let r, t_prune =
        time (fun () -> Mumak.Engine.analyze ~config:pruned (target_of app ()))
      in
      let plan = plan_of r in
      let skipped = List.length plan.Analysis.Prune.skip in
      let fraction = Analysis.Prune.skip_fraction plan in
      if fraction > !best_fraction then best_fraction := fraction;
      let sound = base_signature = Mumak.Report.signature r.Mumak.Engine.report in
      if not sound then Fmt.pr "REGRESSION: %s pruned report differs@." app;
      (* batched confirmation promises pruning is never slower; 25% slack
         absorbs timer noise (the old per-nominee regression was ~3x) *)
      if t_prune > (t_full *. 1.25) +. 0.05 then
        Fmt.pr "REGRESSION: %s pruned slower than unpruned (%.2fs > %.2fs)@." app
          t_prune t_full;
      signature := Mumak.Report.signature r.Mumak.Engine.report;
      Fmt.pr "%-12s %6d %6d %6d %6d %6d %6.1f%% %9.2f %9.2f@." app
        plan.Analysis.Prune.total plan.Analysis.Prune.proven
        plan.Analysis.Prune.confirmed plan.Analysis.Prune.rejected skipped
        (100. *. fraction) t_full t_prune;
      rows :=
        Telemetry.Json.Assoc
          [
            ("kind", Telemetry.Json.String "clean");
            ("target", Telemetry.Json.String app);
            ("failure_points", Telemetry.Json.Int plan.Analysis.Prune.total);
            ("proven", Telemetry.Json.Int plan.Analysis.Prune.proven);
            ("confirmed", Telemetry.Json.Int plan.Analysis.Prune.confirmed);
            ("rejected", Telemetry.Json.Int plan.Analysis.Prune.rejected);
            ("skipped", Telemetry.Json.Int skipped);
            ("skip_fraction", Telemetry.Json.Float fraction);
            ("injections_unpruned", Telemetry.Json.Int base_injections);
            ("injections_pruned", Telemetry.Json.Int r.Mumak.Engine.injections);
            ("signatures_equal", Telemetry.Json.Bool sound);
            ("unpruned_wall_seconds", Telemetry.Json.Float t_full);
            ("pruned_wall_seconds", Telemetry.Json.Float t_prune);
            ("metrics", phase_metrics r);
          ]
        :: !rows)
    clean;
  (* --- seeded matrix: prune must never change what is found --- *)
  let bugs = Pmapps.Registry.all_bugs @ Pmalloc.Bugs.all @ Montage.Mt_alloc.bugs in
  let bugs =
    if smoke then
      List.filter
        (fun b ->
          List.mem b.Bugreg.id
            [
              "wort_link_uninitialized_node"; "btree_insert_no_tx";
              "hm_atomic_count_never_flushed"; "montage_alloc_head_unpersisted";
            ])
        bugs
    else bugs
  in
  Fmt.pr "@.%-32s %-14s %6s %6s %6s %9s@." "seeded bug" "component" "skip"
    "rejd" "bugs" "sound";
  let unsound = ref [] in
  List.iter
    (fun b ->
      Bugreg.with_enabled [ b.Bugreg.id ] (fun () ->
          let base = Mumak.Engine.analyze ~config:unpruned (target_of b.Bugreg.component ()) in
          let r = Mumak.Engine.analyze ~config:pruned (target_of b.Bugreg.component ()) in
          let plan = plan_of r in
          let sound =
            Mumak.Report.signature base.Mumak.Engine.report
            = Mumak.Report.signature r.Mumak.Engine.report
          in
          if not sound then unsound := b.Bugreg.id :: !unsound;
          signature := Mumak.Report.signature r.Mumak.Engine.report;
          Fmt.pr "%-32s %-14s %6d %6d %6d %9s@." b.Bugreg.id b.Bugreg.component
            (List.length plan.Analysis.Prune.skip)
            plan.Analysis.Prune.rejected
            (List.length (Mumak.Report.correctness_bugs r.Mumak.Engine.report))
            (if sound then "yes" else "NO");
          rows :=
            Telemetry.Json.Assoc
              [
                ("kind", Telemetry.Json.String "seeded");
                ("bug", Telemetry.Json.String b.Bugreg.id);
                ("component", Telemetry.Json.String b.Bugreg.component);
                ("skipped", Telemetry.Json.Int (List.length plan.Analysis.Prune.skip));
                ("rejected", Telemetry.Json.Int plan.Analysis.Prune.rejected);
                ("signatures_equal", Telemetry.Json.Bool sound);
              ]
            :: !rows))
    bugs;
  write_bench ~experiment:"absint" ~target:"clean-and-seeded-matrix"
    ~config:pruned ~rows:(List.rev !rows) ~signature:!signature;
  Fmt.pr "@.best clean-target skip fraction: %.1f%% (acceptance bar: 20%%)@."
    (100. *. !best_fraction);
  match !unsound with
  | [] -> Fmt.pr "pruned and unpruned reports agree on every row@."
  | ids ->
      Fmt.pr "REGRESSION: pruning changed the report for: %a@."
        Fmt.(list ~sep:comma string)
        (List.rev ids)

(* Replay-first vs re-execution: the case for the default strategy. Per
   clean target: end-to-end wall and allocated bytes under the live
   re-execution loop and under the batched replay materializer, with the
   speedup and allocation-ratio columns the acceptance criteria read. Then
   the seeded matrix (a representative subset in smoke mode): per-bug wall
   for both engines, aggregated into the matrix-level speedup. Signatures
   must match on every row — a mismatch prints as a REGRESSION. *)
let replay_bench () =
  section "Replay-first vs re-execution: wall clock and allocation diet";
  bench_telemetry_begin ();
  let ops = if smoke then 60 else 200 in
  let key_range = if smoke then 25 else 80 in
  let wl = Workload.standard ~ops ~key_range ~seed:42L in
  let version_for app =
    if String.equal app "hashmap_atomic" then Pmalloc.Version.V1_6
    else Pmalloc.Version.V1_12
  in
  let target_of component () =
    match component with
    | "pmalloc" ->
        Targets.of_app
          (Option.get (Pmapps.Registry.find "btree"))
          ~tx_mode:(Targets.Grouped 64)
          ~workload:(Workload.standard ~ops:(max ops 120) ~key_range ~seed:42L)
          ()
    | "montage" -> Targets.of_montage ~variant:`Buffered ~workload:wl ()
    | app ->
        Targets.of_app
          (Option.get (Pmapps.Registry.find app))
          ~version:(version_for app) ~workload:wl ()
  in
  let reexec = { Mumak.Config.default with strategy = Mumak.Config.Reexecute } in
  let replay = Mumak.Config.default in
  let measure config make_target =
    (* settle GC debt from the previous measurement before timing this one *)
    Gc.compact ();
    let r = Mumak.Engine.analyze ~config (make_target ()) in
    let m = r.Mumak.Engine.metrics in
    (r, m.Mumak.Metrics.wall_seconds, m.Mumak.Metrics.allocated_bytes)
  in
  let ratio a b = if b > 0. then a /. b else 0. in
  let rows = ref [] and signature = ref [] in
  let regressions = ref [] in
  let sound_row name base r =
    let sound =
      Mumak.Report.signature base.Mumak.Engine.report
      = Mumak.Report.signature r.Mumak.Engine.report
    in
    if not sound then begin
      regressions := name :: !regressions;
      Fmt.pr "REGRESSION: %s replay report differs from re-execution@." name
    end;
    signature := Mumak.Report.signature r.Mumak.Engine.report;
    sound
  in
  (* --- clean targets: the allocation-diet criterion reads these rows --- *)
  let clean = [ "wort"; "btree"; "level_hash"; "cceh"; "art" ] in
  let clean = if smoke then [ "wort"; "btree" ] else clean in
  Fmt.pr "%-12s %9s %9s %8s %10s %10s %8s@." "target" "t.reex(s)" "t.replay"
    "speedup" "GB.reex" "GB.replay" "alloc/x";
  List.iter
    (fun app ->
      let base, t_reex, a_reex = measure reexec (target_of app) in
      let r, t_replay, a_replay = measure replay (target_of app) in
      let sound = sound_row app base r in
      Fmt.pr "%-12s %9.3f %9.3f %7.1fx %10.2f %10.2f %7.1fx@." app t_reex t_replay
        (ratio t_reex t_replay) (a_reex /. 1e9) (a_replay /. 1e9)
        (ratio a_reex a_replay);
      rows :=
        Telemetry.Json.Assoc
          [
            ("kind", Telemetry.Json.String "clean");
            ("target", Telemetry.Json.String app);
            ("failure_points", Telemetry.Json.Int r.Mumak.Engine.failure_points);
            ("reexecute_wall_seconds", Telemetry.Json.Float t_reex);
            ("replay_wall_seconds", Telemetry.Json.Float t_replay);
            ("speedup", Telemetry.Json.Float (ratio t_reex t_replay));
            ("reexecute_allocated_bytes", Telemetry.Json.Float a_reex);
            ("replay_allocated_bytes", Telemetry.Json.Float a_replay);
            ("allocated_bytes_ratio", Telemetry.Json.Float (ratio a_reex a_replay));
            ("reexecute_executions", Telemetry.Json.Int base.Mumak.Engine.executions);
            ("replay_executions", Telemetry.Json.Int r.Mumak.Engine.executions);
            ("signatures_equal", Telemetry.Json.Bool sound);
            ("metrics", phase_metrics r);
          ]
        :: !rows)
    clean;
  (* --- seeded matrix: the wall-clock criterion reads the aggregate --- *)
  let bugs = Pmapps.Registry.all_bugs @ Pmalloc.Bugs.all @ Montage.Mt_alloc.bugs in
  let bugs =
    if smoke then
      List.filter
        (fun b ->
          List.mem b.Bugreg.id
            [
              "wort_link_uninitialized_node"; "btree_insert_no_tx";
              "hm_atomic_count_never_flushed"; "montage_alloc_head_unpersisted";
            ])
        bugs
    else bugs
  in
  Fmt.pr "@.%-32s %-14s %9s %9s %8s %6s@." "seeded bug" "component" "t.reex(s)"
    "t.replay" "speedup" "sound";
  let sum_reex = ref 0. and sum_replay = ref 0. in
  List.iter
    (fun b ->
      Bugreg.with_enabled [ b.Bugreg.id ] (fun () ->
          let base, t_reex, _ = measure reexec (target_of b.Bugreg.component) in
          let r, t_replay, _ = measure replay (target_of b.Bugreg.component) in
          let sound = sound_row b.Bugreg.id base r in
          sum_reex := !sum_reex +. t_reex;
          sum_replay := !sum_replay +. t_replay;
          Fmt.pr "%-32s %-14s %9.3f %9.3f %7.1fx %6s@." b.Bugreg.id
            b.Bugreg.component t_reex t_replay (ratio t_reex t_replay)
            (if sound then "yes" else "NO");
          rows :=
            Telemetry.Json.Assoc
              [
                ("kind", Telemetry.Json.String "seeded");
                ("bug", Telemetry.Json.String b.Bugreg.id);
                ("component", Telemetry.Json.String b.Bugreg.component);
                ("reexecute_wall_seconds", Telemetry.Json.Float t_reex);
                ("replay_wall_seconds", Telemetry.Json.Float t_replay);
                ("speedup", Telemetry.Json.Float (ratio t_reex t_replay));
                ("signatures_equal", Telemetry.Json.Bool sound);
              ]
            :: !rows))
    bugs;
  let matrix_speedup = ratio !sum_reex !sum_replay in
  rows :=
    Telemetry.Json.Assoc
      [
        ("kind", Telemetry.Json.String "seeded-matrix-aggregate");
        ("bugs", Telemetry.Json.Int (List.length bugs));
        ("reexecute_wall_seconds", Telemetry.Json.Float !sum_reex);
        ("replay_wall_seconds", Telemetry.Json.Float !sum_replay);
        ("speedup", Telemetry.Json.Float matrix_speedup);
      ]
    :: !rows;
  write_bench ~experiment:"replay" ~target:"clean-and-seeded-matrix" ~config:replay
    ~rows:(List.rev !rows) ~signature:!signature;
  Fmt.pr "@.seeded matrix: %.1fs re-executed vs %.1fs replayed (%.1fx; acceptance bar: 5x)@."
    !sum_reex !sum_replay matrix_speedup;
  match !regressions with
  | [] -> Fmt.pr "replay and re-execution reports agree on every row@."
  | ids ->
      Fmt.pr "REGRESSION: replay changed the report for: %a@."
        Fmt.(list ~sep:comma string)
        (List.rev ids)

(* Optimizer: synthesis + replay verification over the kvstore matrix.
   Per target: plans synthesized/verified, the proven/ineffective/harmful
   verdict tally, and — over the shipped (proven-only) bundle — projected
   vs replay-measured events and modelled cycles saved, plus the
   verification wall time and replay count. The run's report signature
   must equal the same configuration with [optimize] off (the phase only
   appends its own summary, never perturbs findings), the phase must add
   zero target executions, and at least one kvstore must ship a proven
   bundle that reduces persist events — each miss prints as REGRESSION. *)
let optimize_bench () =
  section "Optimizer: cost-priced persist transformations, replay-verified bundles";
  bench_telemetry_begin ();
  let ops = if smoke then 120 else 150 in
  let wl = Workload.standard ~ops ~key_range:60 ~seed:42L in
  let targets =
    if smoke then [ Targets.of_redis ~workload:wl () ]
    else
      [
        Targets.of_redis ~workload:wl ();
        Targets.of_rocksdb ~workload:wl ();
        Targets.of_pmemkv ~engine:Kvstores.Pmemkv.Cmap ~workload:wl ();
      ]
  in
  let baseline_config =
    { Mumak.Config.optimizing with Mumak.Config.optimize = false }
  in
  let regressions = ref [] in
  let regress fmt = Format.kasprintf (fun s -> regressions := s :: !regressions) fmt in
  let rows = ref [] and signature = ref [] in
  let any_proven_reducing = ref false in
  Fmt.pr "%-16s %6s %6s %6s %5s %5s %9s %9s %9s %8s@." "target" "plans" "verif"
    "provn" "ineff" "harmf" "ev.proj" "ev.meas" "cyc.meas" "t.opt(s)";
  let case ?(fit_cost = false) target =
    let config = { Mumak.Config.optimizing with Mumak.Config.fit_cost } in
    let r = Mumak.Engine.analyze ~config target in
    let o = Option.get r.Mumak.Engine.opt in
    let shipped = Analysis.Opt.shipped o in
    let sum f = List.fold_left (fun a b -> a + f b) 0 shipped in
    let proj_ev = sum (fun b -> b.Analysis.Opt.b_plan.Analysis.Opt.p_projected_events) in
    let meas_ev = sum (fun b -> b.Analysis.Opt.b_measured_events) in
    let proj_cyc = sum (fun b -> b.Analysis.Opt.b_plan.Analysis.Opt.p_projected_cycles) in
    let meas_cyc = sum (fun b -> b.Analysis.Opt.b_measured_cycles) in
    let t_opt = r.Mumak.Engine.opt_metrics.Mumak.Metrics.wall_seconds in
    let name =
      target.Mumak.Target.name ^ if fit_cost then " (fitted)" else ""
    in
    (* the phase must ride the shared recording: no extra executions *)
    if r.Mumak.Engine.executions <> 1 then
      regress "%s: optimize run cost %d executions (expected 1)" name
        r.Mumak.Engine.executions;
    (* shipped bundles are proven by construction; anything else is a bug *)
    List.iter
      (fun b ->
        if b.Analysis.Opt.b_verdict <> Analysis.Verify_fix.Proven then
          regress "%s: shipped bundle with verdict other than proven" name)
      shipped;
    (* the optimizer reads the report, never writes it *)
    let base = Mumak.Engine.analyze ~config:baseline_config target in
    let sound =
      Mumak.Report.signature base.Mumak.Engine.report
      = Mumak.Report.signature r.Mumak.Engine.report
    in
    if not sound then
      regress "%s: report signature changed when optimize was enabled" name;
    if o.Analysis.Opt.proven > 0 && meas_ev > 0 then any_proven_reducing := true;
    signature := Mumak.Report.signature r.Mumak.Engine.report;
    Fmt.pr "%-16s %6d %6d %6d %5d %5d %9d %9d %9d %8.2f@." name
      o.Analysis.Opt.synthesized o.Analysis.Opt.verified o.Analysis.Opt.proven
      o.Analysis.Opt.ineffective o.Analysis.Opt.harmful proj_ev meas_ev meas_cyc
      t_opt;
    rows :=
      Telemetry.Json.Assoc
        [
          ("target", Telemetry.Json.String target.Mumak.Target.name);
          ("fit_cost", Telemetry.Json.Bool fit_cost);
          ("synthesized", Telemetry.Json.Int o.Analysis.Opt.synthesized);
          ("verified", Telemetry.Json.Int o.Analysis.Opt.verified);
          ("proven", Telemetry.Json.Int o.Analysis.Opt.proven);
          ("ineffective", Telemetry.Json.Int o.Analysis.Opt.ineffective);
          ("harmful", Telemetry.Json.Int o.Analysis.Opt.harmful);
          ("shipped", Telemetry.Json.Int (List.length shipped));
          ("baseline_events", Telemetry.Json.Int o.Analysis.Opt.baseline_events);
          ("baseline_cycles", Telemetry.Json.Int o.Analysis.Opt.baseline_cycles);
          ("projected_events_saved", Telemetry.Json.Int proj_ev);
          ("measured_events_saved", Telemetry.Json.Int meas_ev);
          ("projected_cycles_saved", Telemetry.Json.Int proj_cyc);
          ("measured_cycles_saved", Telemetry.Json.Int meas_cyc);
          ("verification_replays", Telemetry.Json.Int o.Analysis.Opt.replays);
          ("verification_wall_seconds", Telemetry.Json.Float t_opt);
          ("executions", Telemetry.Json.Int r.Mumak.Engine.executions);
          ("signature_matches_baseline", Telemetry.Json.Bool sound);
          ("metrics", phase_metrics r);
        ]
      :: !rows
  in
  List.iter case targets;
  (* one fitted-weights row: the cost model priced from a timed replay of
     the same recording instead of the static table *)
  case ~fit_cost:true (Targets.of_redis ~workload:wl ());
  if not !any_proven_reducing then
    regress "no target shipped a proven bundle that reduces persist events";
  write_bench ~experiment:"optimize" ~target:"kvstore-matrix"
    ~config:Mumak.Config.optimizing ~rows:(List.rev !rows) ~signature:!signature;
  (match List.rev !regressions with
  | [] ->
      Fmt.pr
        "@.every target verified its bundle off the one shared recording; proven \
         plans reduce persist events; reports are untouched by the phase@."
  | rs -> List.iter (fun r -> Fmt.pr "REGRESSION: %s@." r) rs);
  Fmt.pr
    "@.expected shape: each kvstore ships proven fence-batching and (where one \
     store owns a heavily-flushed region) non-temporal-conversion bundles; \
     measured savings equal projections for pure-deletion plans; harmful \
     candidates are reported but never shipped.@."

(* ------------------------------------------------------------------ *)
(* trend: judge the stored bench history against its baselines          *)
(* ------------------------------------------------------------------ *)

(* Not a benchmark: reads the envelopes earlier runs appended to the
   results ledger (MUMAK_STORE) and fails when the newest run of any
   experiment regressed in wall time or allocation beyond the threshold —
   the CI gate over performance, next to the report-signature gate over
   findings. *)
let trend () =
  section "bench trend gate";
  let ledger = Store.Ledger.open_ () in
  let history = Store.Ledger.bench_history ledger in
  match Store.Trend.check history with
  | [] ->
      Fmt.pr "no bench envelopes recorded in %s yet@."
        (Store.Ledger.bench_path ledger)
  | verdicts ->
      List.iter (fun v -> Fmt.pr "%a@." Store.Trend.pp_verdict v) verdicts;
      if Store.Trend.any_regressed verdicts then begin
        Fmt.pr "@.TREND REGRESSION: newest run exceeds its stored baseline@.";
        exit 1
      end
      else Fmt.pr "@.all experiments within their envelopes@."

let experiments =
  [
    ("table1", table1);
    ("fig3", fig3);
    ("fig4", fig4);
    ("table2", table2);
    ("coverage", coverage);
    ("fig5", fig5);
    ("newbugs", newbugs);
    ("table3", table3);
    ("ablation", ablation);
    ("scaling", scaling);
    ("prioritized", prioritized);
    ("lint", lint_bench);
    ("absint", absint_bench);
    ("replay", replay_bench);
    ("optimize", optimize_bench);
    ("micro", micro);
    ("trend", trend);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst experiments
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
          Fmt.epr "unknown experiment %s; available: %a@." name
            Fmt.(list ~sep:comma string)
            (List.map fst experiments);
          exit 1)
    requested;
  Fmt.pr "@.total bench time: %.1fs@." (Unix.gettimeofday () -. t0)
